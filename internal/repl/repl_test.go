package repl

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

func openLeader(t *testing.T) *storage.Store {
	t.Helper()
	st, err := storage.Open(storage.Options{Dir: t.TempDir(), PoolSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func openFollowerStore(t *testing.T) *storage.Store {
	t.Helper()
	st, err := storage.Open(storage.Options{Dir: t.TempDir(), PoolSize: 32, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// waitCaughtUp blocks until the follower has applied everything up to the
// leader's flushed end — the bounded-replica-lag assertion in its simplest
// form. It waits on the applied watermark, not the log end, which advances
// at ingest before the batch's effects are visible.
func waitCaughtUp(t *testing.T, leader, follower *storage.Store) {
	t.Helper()
	if err := leader.FlushLog(); err != nil {
		t.Fatal(err)
	}
	target := leader.LogFlushed()
	deadline := time.Now().Add(10 * time.Second)
	for follower.ReplApplied() < target {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at lsn %d, leader flushed %d", follower.ReplApplied(), target)
		}
		time.Sleep(time.Millisecond)
	}
}

func snapshotMap(t *testing.T, st *storage.Store) map[storage.RID]string {
	t.Helper()
	m := make(map[storage.RID]string)
	if err := st.ForEachRecord(func(rid storage.RID, data []byte) error {
		m[rid] = string(data)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func mustWrite(t *testing.T, st *storage.Store, vals ...string) {
	t.Helper()
	txn, err := st.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if _, err := st.Insert(txn, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(txn); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationConvergence(t *testing.T) {
	leader := openLeader(t)
	srv, err := NewServer(leader, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fst := openFollowerStore(t)
	f, err := StartFollower(fst, srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	for i := 0; i < 50; i++ {
		mustWrite(t, leader, fmt.Sprintf("rec-%d-a", i), fmt.Sprintf("rec-%d-b", i))
	}
	waitCaughtUp(t, leader, fst)

	lm, fm := snapshotMap(t, leader), snapshotMap(t, fst)
	if len(lm) != 100 || len(fm) != len(lm) {
		t.Fatalf("leader has %d records, follower %d (want 100)", len(lm), len(fm))
	}
	for rid, v := range lm {
		if fm[rid] != v {
			t.Fatalf("divergence at %v: leader %q, follower %q", rid, v, fm[rid])
		}
	}
	if srv.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1", srv.Sessions())
	}
	if f.Applied() == 0 {
		t.Fatal("follower applied no records")
	}
	// The follower's acks raise the leader's retention floor.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ack, ok := srv.MinAck(); ok && ack >= leader.LogFlushed() {
			break
		}
		if time.Now().After(deadline) {
			ack, ok := srv.MinAck()
			t.Fatalf("min ack stuck at %d (ok=%v), leader flushed %d", ack, ok, leader.LogFlushed())
		}
		time.Sleep(time.Millisecond)
	}
	// Writes through a follower must be refused.
	if _, err := fst.Begin(); !errors.Is(err, storage.ErrFollowerReadOnly) {
		t.Fatalf("follower Begin: got %v, want ErrFollowerReadOnly", err)
	}
}

func TestFollowerReconnectsAfterLeaderRestartOfServer(t *testing.T) {
	leader := openLeader(t)
	srv, err := NewServer(leader, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var addr atomicString
	addr.Store(srv.Addr())

	fst := openFollowerStore(t)
	f, err := StartFollower(fst, addr.Load)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	mustWrite(t, leader, "before-restart")
	waitCaughtUp(t, leader, fst)

	// Drop the shipping endpoint; the follower must retry until a new
	// one appears, then resume from its own offset.
	srv.Close()
	mustWrite(t, leader, "while-down")
	srv2, err := NewServer(leader, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	addr.Store(srv2.Addr())

	waitCaughtUp(t, leader, fst)
	lm, fm := snapshotMap(t, leader), snapshotMap(t, fst)
	if len(fm) != len(lm) {
		t.Fatalf("after reconnect: leader %d records, follower %d", len(lm), len(fm))
	}
	if f.Reconnects() == 0 {
		t.Fatal("expected at least one reconnect")
	}
	if err := f.Err(); err != nil {
		t.Fatalf("follower failed: %v", err)
	}
}

func TestFollowerPromote(t *testing.T) {
	leader := openLeader(t)
	srv, err := NewServer(leader, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fst := openFollowerStore(t)
	f, err := StartFollower(fst, srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, leader, "a", "b", "c")
	waitCaughtUp(t, leader, fst)
	before := snapshotMap(t, fst)

	srv.Close() // leader "dies"
	stats, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if fst.IsFollower() {
		t.Fatal("store still in follower mode after promote")
	}
	if stats.Elapsed <= 0 {
		t.Fatal("promote reported no elapsed time")
	}
	// Everything replicated before the failover survived...
	after := snapshotMap(t, fst)
	if len(after) != len(before) {
		t.Fatalf("promotion lost records: %d -> %d", len(before), len(after))
	}
	// ...and the promoted store takes writes.
	mustWrite(t, fst, "post-promote")
	if got := len(snapshotMap(t, fst)); got != len(before)+1 {
		t.Fatalf("post-promote write missing: %d records, want %d", got, len(before)+1)
	}
	// A second promote is an error.
	if _, err := fst.Promote(); !errors.Is(err, storage.ErrNotFollower) {
		t.Fatalf("double promote: got %v, want ErrNotFollower", err)
	}
}

func TestDivergedFollowerRefused(t *testing.T) {
	// A store with its own (leader) history, reopened as a follower of an
	// empty leader, is ahead of the leader's log: the handshake must
	// refuse it fatally rather than interleave two histories.
	dir := t.TempDir()
	st, err := storage.Open(storage.Options{Dir: dir, PoolSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, st, "own-history")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	fst, err := storage.Open(storage.Options{Dir: dir, PoolSize: 16, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fst.Close()

	leader := openLeader(t)
	srv, err := NewServer(leader, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f, err := StartFollower(fst, srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-f.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("refused follower did not stop")
	}
	if err := f.Err(); !errors.Is(err, ErrRefused) {
		t.Fatalf("diverged follower: got %v, want ErrRefused", err)
	}
}

// atomicString is a tiny helper for swapping the leader address under the
// follower's addrFn.
type atomicString struct {
	mu sync.Mutex
	s  string
}

func (a *atomicString) Store(s string) { a.mu.Lock(); a.s = s; a.mu.Unlock() }
func (a *atomicString) Load() string   { a.mu.Lock(); defer a.mu.Unlock(); return a.s }
