package repl

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/storage"
)

const (
	dialTimeout    = 2 * time.Second
	backoffInitial = 100 * time.Millisecond
	backoffMax     = 5 * time.Second
	// checkpointEvery is how many applied records between follower
	// checkpoints, keeping its own restart-recovery tail bounded without
	// waiting on the leader's cadence.
	checkpointEvery = 4096
)

// Follower drives a follower store: it dials the leader, resumes the ship
// stream from the local log end, ingests and applies batches, and acks its
// durable position. A dead leader is survived by reconnecting with
// exponential backoff — the resume offset makes reconnection stateless —
// and a torn mid-segment tail from a leader crash is already truncated by
// the follower store's own open-time recovery before this loop ever runs.
//
// Fatal conditions (the leader refuses the offset, the shipped stream
// diverges from local state, an injected crash fault) stop the loop and
// are reported by Err; everything else retries forever until Stop or
// Promote.
type Follower struct {
	st     *storage.Store
	addrFn func() string

	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu   sync.Mutex
	conn net.Conn
	err  error

	applied    atomic.Uint64 // records applied since start
	reconnects atomic.Uint64
	connected  atomic.Bool
}

// StartFollower begins following. addrFn is consulted on every dial, so a
// restarted leader on a new address is picked up without restarting the
// follower. st must be open in follower mode.
func StartFollower(st *storage.Store, addrFn func() string) (*Follower, error) {
	if !st.IsFollower() {
		return nil, storage.ErrNotFollower
	}
	f := &Follower{
		st:     st,
		addrFn: addrFn,
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go f.run()
	return f, nil
}

// Stop terminates the follow loop (idempotent). The store stays open, in
// follower mode.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.quit) })
	f.mu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	<-f.done
}

// Done is closed when the follow loop has exited.
func (f *Follower) Done() <-chan struct{} { return f.done }

// Err returns the fatal error that stopped the loop, nil if it is running
// or was stopped deliberately.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Applied returns the number of records applied since start.
func (f *Follower) Applied() uint64 { return f.applied.Load() }

// Reconnects returns how many times the stream was re-established.
func (f *Follower) Reconnects() uint64 { return f.reconnects.Load() }

// Connected reports whether a ship stream is currently established. A
// fresh follower should be attached before the leader prunes history, or
// its first handshake may already require a resync.
func (f *Follower) Connected() bool { return f.connected.Load() }

// Promote stops following and promotes the store to leader.
func (f *Follower) Promote() (storage.PromoteStats, error) {
	f.Stop()
	if err := f.Err(); err != nil {
		return storage.PromoteStats{}, fmt.Errorf("repl: cannot promote a failed follower: %w", err)
	}
	return f.st.Promote()
}

func (f *Follower) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *Follower) run() {
	defer close(f.done)
	// An injected crash fault in the apply path panics through here; the
	// torture harness treats the follower store as killed and reopens it
	// from disk. Record it as the loop's fatal error instead of taking
	// the process down.
	defer func() {
		if r := recover(); r != nil {
			if c, ok := faults.AsCrash(r); ok {
				f.fail(c)
				return
			}
			panic(r)
		}
	}()
	backoff := backoffInitial
	for {
		select {
		case <-f.quit:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", f.addrFn(), dialTimeout)
		if err != nil {
			select {
			case <-f.quit:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		f.mu.Lock()
		f.conn = conn
		f.mu.Unlock()
		fatal, progressed, err := f.stream(conn)
		conn.Close()
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		f.connected.Store(false)
		if fatal {
			f.fail(err)
			return
		}
		select {
		case <-f.quit:
			return
		default:
		}
		f.reconnects.Add(1)
		if progressed {
			backoff = backoffInitial
		}
		select {
		case <-f.quit:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// stream runs one connection's conversation. fatal reports an error no
// reconnect can fix; progressed reports whether any batch applied (resets
// backoff).
func (f *Follower) stream(conn net.Conn) (fatal, progressed bool, err error) {
	fw := newFrameWriter(conn)
	fr := newFrameReader(conn)
	if err := fw.writeFrame(frHello, encodeHello(f.st.LogEnd())); err != nil {
		return false, false, err
	}
	kind, payload, err := fr.readFrame()
	if err != nil {
		return false, false, err
	}
	switch kind {
	case frHelloAck:
		if _, _, err := decodeHelloAck(payload); err != nil {
			return false, false, err
		}
	case frError:
		// The leader will not serve this offset (pruned below it, or we
		// are ahead of its log — a divergence). No reconnect fixes that.
		return true, false, fmt.Errorf("%w: %s", ErrRefused, string(payload))
	default:
		return false, false, protoErrf("handshake answered with frame kind %d", kind)
	}
	f.connected.Store(true)
	var sinceCkpt uint64
	for {
		kind, payload, err := fr.readFrame()
		if err != nil {
			return false, progressed, err // connection died: reconnect
		}
		switch kind {
		case frData:
			base, nrecs, raw, err := decodeData(payload)
			if err != nil {
				return false, progressed, err
			}
			if base != f.st.LogEnd() {
				// A frame from a stale stream position (e.g. duplicated
				// after a reconnect race). Drop the connection and resume
				// cleanly from our end.
				return false, progressed, protoErrf(
					"data frame at lsn %d, local log ends at %d", base, f.st.LogEnd())
			}
			n, err := f.st.ReplIngest(base, raw)
			if err != nil {
				// Divergence, a sealed log, failed apply: local state can
				// no longer follow this leader.
				return true, progressed, err
			}
			if n != nrecs {
				return true, progressed, protoErrf("batch announced %d records, applied %d", nrecs, n)
			}
			if err := f.st.FlushLog(); err != nil {
				return true, progressed, err
			}
			f.applied.Add(uint64(n))
			sinceCkpt += uint64(n)
			progressed = true
			if err := fw.writeFrame(frAck, encodeAck(f.st.LogFlushed(), f.applied.Load())); err != nil {
				return false, progressed, err
			}
			if sinceCkpt >= checkpointEvery {
				sinceCkpt = 0
				if err := f.st.Checkpoint(); err != nil {
					return true, progressed, err
				}
			}
		case frError:
			return true, progressed, fmt.Errorf("%w: %s", ErrRefused, string(payload))
		default:
			return false, progressed, protoErrf("unexpected frame kind %d", kind)
		}
	}
}

// RegisterMetrics exposes the apply side's counters.
func (f *Follower) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sentinel_repl_apply_records_total",
		"Shipped WAL records applied by this follower.",
		f.applied.Load)
	r.CounterFunc("sentinel_repl_reconnects_total",
		"Times the follower re-established its ship stream.",
		f.reconnects.Load)
	r.GaugeFunc("sentinel_repl_connected",
		"1 while the ship stream is established, else 0.",
		func() float64 {
			if f.connected.Load() {
				return 1
			}
			return 0
		})
}
