// Package repl implements WAL-shipping replication: a leader serves its
// write-ahead log over a framed binary protocol, and a follower store
// continuously ingests and applies it, staying a bounded number of records
// behind while serving lock-free snapshot reads. The follower survives
// leader crashes (reconnect with offset resume, or promotion to leader);
// the leader survives slow or dead followers (bounded sends, shed and
// resync — the commit path never blocks on replication).
//
// The unit of shipping is the raw WAL byte stream: record frames are
// CRC-checked on both ends and byte offsets are LSNs, so a follower's
// position is just its local log end and resuming after either side
// restarts is a single offset in the handshake.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire protocol: length-prefixed binary frames, in the style of the GED
// bus (internal/ged/wire.go):
//
//	u32 payload length (little endian) | u8 kind | payload
//
// A torn frame surfaces as an unexpected EOF, an announced length beyond
// maxFrame is a protocol error before any allocation. The conversation is
// fixed-shape: follower sends hello{from}, leader answers helloAck{start,
// end} or error, then data{base, raw WAL bytes} frames flow leader →
// follower and ack{durable} frames flow back on the same connection.
const protoVersion = 1

const (
	// maxShipBatch bounds one data frame's WAL payload. Small enough to
	// keep send buffers and per-frame latency bounded, large enough to
	// amortize framing on bulk catch-up.
	maxShipBatch = 256 << 10
	// maxFrame bounds any announced frame payload (data frame overhead
	// included).
	maxFrame = maxShipBatch + 64
	// maxErrMsg bounds an error frame's message.
	maxErrMsg = 4 << 10
)

type frameKind uint8

const (
	frHello    frameKind = iota + 1 // follower → leader: proto, resume LSN
	frHelloAck                      // leader → follower: proto, log start, log end
	frData                          // leader → follower: base LSN, record count, raw WAL bytes
	frAck                           // follower → leader: durable LSN, records applied
	frError                         // leader → follower: refusal message, then close
)

// ErrProtocol reports a malformed or oversized frame; connections close on
// first occurrence.
var ErrProtocol = errors.New("repl: protocol error")

func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// ErrRefused wraps a leader's error frame: the leader is healthy but will
// not serve this follower from its offset (e.g. the log below it was
// pruned and a full resync is required).
var ErrRefused = errors.New("repl: leader refused session")

// frameWriter serializes frames; not safe for concurrent use.
type frameWriter struct {
	w   *bufio.Writer
	hdr [5]byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: bufio.NewWriterSize(w, 64<<10)}
}

func (fw *frameWriter) writeFrame(kind frameKind, payload []byte) error {
	if len(payload) > maxFrame {
		return protoErrf("frame payload %d exceeds limit %d", len(payload), maxFrame)
	}
	binary.LittleEndian.PutUint32(fw.hdr[:4], uint32(len(payload)))
	fw.hdr[4] = byte(kind)
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return err
	}
	return fw.w.Flush()
}

// frameReader reads frames; the returned payload is valid until the next
// call (the buffer is reused).
type frameReader struct {
	r   *bufio.Reader
	buf []byte
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

func (fr *frameReader) readFrame() (frameKind, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		return 0, nil, err // clean EOF between frames
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	kind := frameKind(hdr[4])
	if n > maxFrame {
		return kind, nil, protoErrf("frame announces %d bytes (limit %d)", n, maxFrame)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return kind, nil, err
	}
	return kind, fr.buf, nil
}

// --- frame payloads ---------------------------------------------------------

func encodeHello(from uint64) []byte {
	b := make([]byte, 0, 12)
	b = append(b, protoVersion)
	return binary.LittleEndian.AppendUint64(b, from)
}

func decodeHello(p []byte) (from uint64, err error) {
	if len(p) != 9 {
		return 0, protoErrf("hello payload is %d bytes, want 9", len(p))
	}
	if p[0] != protoVersion {
		return 0, protoErrf("peer speaks protocol v%d, this end v%d", p[0], protoVersion)
	}
	return binary.LittleEndian.Uint64(p[1:]), nil
}

func encodeHelloAck(start, end uint64) []byte {
	b := make([]byte, 0, 20)
	b = append(b, protoVersion)
	b = binary.LittleEndian.AppendUint64(b, start)
	return binary.LittleEndian.AppendUint64(b, end)
}

func decodeHelloAck(p []byte) (start, end uint64, err error) {
	if len(p) != 17 {
		return 0, 0, protoErrf("helloAck payload is %d bytes, want 17", len(p))
	}
	if p[0] != protoVersion {
		return 0, 0, protoErrf("leader speaks protocol v%d, this end v%d", p[0], protoVersion)
	}
	return binary.LittleEndian.Uint64(p[1:]), binary.LittleEndian.Uint64(p[9:]), nil
}

// encodeData frames a raw WAL batch into buf (reused across sends).
func encodeData(buf []byte, base uint64, nrecs int, raw []byte) []byte {
	b := binary.LittleEndian.AppendUint64(buf[:0], base)
	b = binary.LittleEndian.AppendUint32(b, uint32(nrecs))
	return append(b, raw...)
}

func decodeData(p []byte) (base uint64, nrecs int, raw []byte, err error) {
	if len(p) < 12 {
		return 0, 0, nil, protoErrf("data payload is %d bytes, want >= 12", len(p))
	}
	return binary.LittleEndian.Uint64(p), int(binary.LittleEndian.Uint32(p[8:])), p[12:], nil
}

func encodeAck(durable, applied uint64) []byte {
	b := binary.LittleEndian.AppendUint64(make([]byte, 0, 16), durable)
	return binary.LittleEndian.AppendUint64(b, applied)
}

func decodeAck(p []byte) (durable, applied uint64, err error) {
	if len(p) != 16 {
		return 0, 0, protoErrf("ack payload is %d bytes, want 16", len(p))
	}
	return binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint64(p[8:]), nil
}

func encodeError(msg string) []byte {
	if len(msg) > maxErrMsg {
		msg = msg[:maxErrMsg]
	}
	return []byte(msg)
}
