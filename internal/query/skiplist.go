package query

import (
	"bytes"
	"sync"
)

// skiplist is the in-memory directory behind an ordered index: byte-string
// keys (order-preserving attr encoding + big-endian OID suffix, so
// duplicate attr values coexist and scans emit them in OID order) mapping
// to the optimistic record location. Readers re-verify through MVCC, so
// the list only needs internal consistency: one mutex for writers,
// read-locked iteration for scans. Levels are driven by a cheap xorshift
// PRNG seeded per list — no global rand dependency.
const skipMaxLevel = 24

type skipNode struct {
	key  []byte
	val  skipVal
	next [skipMaxLevel]*skipNode
}

type skiplist struct {
	mu    sync.RWMutex
	head  *skipNode
	level int
	size  int
	rng   uint64
}

func newSkiplist() *skiplist {
	return &skiplist{head: &skipNode{}, level: 1, rng: 0x9E3779B97F4A7C15}
}

func (s *skiplist) randLevel() int {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	lvl := 1
	// P(level bump) = 1/4 per step, geometric.
	for x&3 == 0 && lvl < skipMaxLevel {
		lvl++
		x >>= 2
	}
	return lvl
}

// set inserts or overwrites key.
func (s *skiplist) set(key []byte, val skipVal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var update [skipMaxLevel]*skipNode
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if nxt := x.next[0]; nxt != nil && bytes.Equal(nxt.key, key) {
		nxt.val = val
		return
	}
	lvl := s.randLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	n := &skipNode{key: key, val: val}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.size++
}

// del removes key if present.
func (s *skiplist) del(key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var update [skipMaxLevel]*skipNode
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	target := x.next[0]
	if target == nil || !bytes.Equal(target.key, key) {
		return
	}
	for i := 0; i < s.level; i++ {
		if update[i].next[i] == target {
			update[i].next[i] = target.next[i]
		}
	}
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.size--
}

// get returns the value for key.
func (s *skiplist) get(key []byte) (skipVal, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	if nxt := x.next[0]; nxt != nil && bytes.Equal(nxt.key, key) {
		return nxt.val, true
	}
	return skipVal{}, false
}

// scan visits entries with lo <= key < hi (nil lo = from start, nil hi =
// to end) in key order, under the read lock; fn returns false to stop.
// Keys and values are copied out by the caller if retained — fn must not
// block on writer work.
func (s *skiplist) scan(lo, hi []byte, fn func(key []byte, val skipVal) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	x := s.head
	if lo != nil {
		for i := s.level - 1; i >= 0; i-- {
			for x.next[i] != nil && bytes.Compare(x.next[i].key, lo) < 0 {
				x = x.next[i]
			}
		}
	}
	for n := x.next[0]; n != nil; n = n.next[0] {
		if hi != nil && bytes.Compare(n.key, hi) >= 0 {
			return
		}
		if !fn(n.key, n.val) {
			return
		}
	}
}

func (s *skiplist) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}
