package query

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/lockmgr"
	"repro/internal/obs"
	"repro/internal/object"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Secondary indexes live in the same heap as the objects they index: every
// directory posting has a persistent entry record
//
//	0xD8 | index-ID u32 BE | oid u64 BE | key-len u16 BE | key bytes
//
// inserted and deleted by the SAME transaction that mutates the base
// object. That one decision buys the whole durability story for free:
// entry writes are undone by the storage manager's CLRs on abort, redone
// by ARIES recovery after a crash, and shipped to followers as ordinary
// record traffic — the index never needs its own log, checkpoint, or
// repair pass. The leading 0xD8/0xD9 bytes are values no gob stream can
// start with, so object-layer scans skip index records and vice versa.
//
// The in-memory directories (hash map / skiplist) rebuilt from those
// records at open are OPTIMISTIC: they may briefly hold postings for
// uncommitted creates, or keep postings whose delete has committed until
// no live snapshot can still see the old object version. Probes therefore
// return a superset of candidates and every candidate is re-verified by
// loading the object under the probing transaction (MVCC visibility or
// 2PL read, embedded-OID check) and re-evaluating the predicate — a stale
// posting can only cost a skip, never a wrong row. Committed-delete
// postings are held in a graveyard stamped with the deleting commit TS
// and pruned once the store's snapshot floor passes them.
//
// The index catalog — the list of index definitions — is one record
// (0xD9 | gob) that is the authority at boot; DDL additionally appends
// logical RecIdxCreate/RecIdxDrop log records so followers learn about
// definition changes in commit order on the replication stream.

const (
	entryMagic byte = 0xD8
	catMagic   byte = 0xD9
	// catalogLock is the object layer's catalog resource: index DDL takes
	// it exclusively so backfill/teardown serialize against all writers.
	catalogLock = "catalog"
	// idxPruneEvery bounds how often a mutator consults the snapshot floor.
	idxPruneEvery = 64
)

// Errors reported by the index layer.
var (
	ErrIndexExists   = errors.New("query: index already exists")
	ErrNoIndex       = errors.New("query: no such index")
	ErrBadIndexAttr  = errors.New("query: index attribute must be non-empty")
	ErrNotPersistent = errors.New("query: indexes require a store")
)

// IndexKind selects the directory structure — and with it the predicate
// shapes the index can serve.
type IndexKind uint8

const (
	// HashIndex serves equality probes only.
	HashIndex IndexKind = iota + 1
	// OrderedIndex (skiplist) serves equality and range scans.
	OrderedIndex
)

func (k IndexKind) String() string {
	switch k {
	case HashIndex:
		return "hash"
	case OrderedIndex:
		return "ordered"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IndexDef describes one secondary index: class extent (exact class, not
// subclasses), indexed attribute, directory kind.
type IndexDef struct {
	ID    uint32
	Class string
	Attr  string
	Kind  IndexKind
}

func (d IndexDef) String() string {
	return fmt.Sprintf("%s(%s.%s)#%d", d.Kind, d.Class, d.Attr, d.ID)
}

// skipVal is the directory posting payload: the OID (candidate for
// re-verification) and the entry record's location (so maintenance can
// delete the record when the key leaves).
type skipVal struct {
	oid uint64
	rid storage.RID
}

// index is one live index: definition plus its directory.
type index struct {
	def IndexDef

	hmu  sync.RWMutex
	hash map[string]map[uint64]storage.RID // HashIndex: enc key -> oid -> entry RID

	ord *skiplist // OrderedIndex: enc key || oid BE -> skipVal
}

func makeIndex(def IndexDef) *index {
	ix := &index{def: def}
	if def.Kind == HashIndex {
		ix.hash = make(map[string]map[uint64]storage.RID)
	} else {
		ix.ord = newSkiplist()
	}
	return ix
}

// okey is the ordered-directory key: attr key + big-endian OID, so equal
// attr values coexist and scan in OID order.
func okey(key []byte, oid uint64) []byte {
	out := make([]byte, len(key)+8)
	copy(out, key)
	binary.BigEndian.PutUint64(out[len(key):], oid)
	return out
}

func (ix *index) add(key []byte, oid uint64, rid storage.RID) {
	if ix.hash != nil {
		ix.hmu.Lock()
		m := ix.hash[string(key)]
		if m == nil {
			m = make(map[uint64]storage.RID)
			ix.hash[string(key)] = m
		}
		m[oid] = rid
		ix.hmu.Unlock()
		return
	}
	ix.ord.set(okey(key, oid), skipVal{oid: oid, rid: rid})
}

// getRID returns the entry-record location for (key, oid).
func (ix *index) getRID(key []byte, oid uint64) (storage.RID, bool) {
	if ix.hash != nil {
		ix.hmu.RLock()
		defer ix.hmu.RUnlock()
		rid, ok := ix.hash[string(key)][oid]
		return rid, ok
	}
	v, ok := ix.ord.get(okey(key, oid))
	return v.rid, ok
}

// removeIfRID drops the posting only if it still refers to the given
// entry record — a transaction that re-added the same key meanwhile must
// not lose its fresh posting to an abort-undo or graveyard prune of the
// old one.
func (ix *index) removeIfRID(key []byte, oid uint64, rid storage.RID) {
	if ix.hash != nil {
		ix.hmu.Lock()
		defer ix.hmu.Unlock()
		m := ix.hash[string(key)]
		if cur, ok := m[oid]; ok && cur == rid {
			delete(m, oid)
			if len(m) == 0 {
				delete(ix.hash, string(key))
			}
		}
		return
	}
	k := okey(key, oid)
	if v, ok := ix.ord.get(k); ok && v.rid == rid {
		ix.ord.del(k)
	}
}

// eqCandidates returns the (superset) OIDs posted under exactly key,
// sorted for deterministic iteration.
func (ix *index) eqCandidates(key []byte) []uint64 {
	var oids []uint64
	if ix.hash != nil {
		ix.hmu.RLock()
		for oid := range ix.hash[string(key)] {
			oids = append(oids, oid)
		}
		ix.hmu.RUnlock()
		sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
		return oids
	}
	ix.ord.scan(key, prefixEnd(key), func(_ []byte, v skipVal) bool {
		oids = append(oids, v.oid)
		return true
	})
	return oids
}

// rangeCandidates returns the (superset) OIDs posted in [lo, hi) of the
// ordered directory, key order, deduplicated. nil bounds are open ends.
func (ix *index) rangeCandidates(lo, hi []byte) []uint64 {
	if ix.ord == nil {
		return nil
	}
	var oids []uint64
	seen := make(map[uint64]struct{})
	ix.ord.scan(lo, hi, func(_ []byte, v skipVal) bool {
		if _, dup := seen[v.oid]; !dup {
			seen[v.oid] = struct{}{}
			oids = append(oids, v.oid)
		}
		return true
	})
	return oids
}

// entries snapshots every posting (for index teardown).
func (ix *index) entries() []idxEntryRef {
	var out []idxEntryRef
	if ix.hash != nil {
		ix.hmu.RLock()
		for k, m := range ix.hash {
			for oid, rid := range m {
				out = append(out, idxEntryRef{idx: ix.def.ID, key: []byte(k), oid: oid, rid: rid})
			}
		}
		ix.hmu.RUnlock()
		return out
	}
	ix.ord.scan(nil, nil, func(k []byte, v skipVal) bool {
		key := make([]byte, len(k)-8)
		copy(key, k[:len(k)-8])
		out = append(out, idxEntryRef{idx: ix.def.ID, key: key, oid: v.oid, rid: v.rid})
		return true
	})
	return out
}

func (ix *index) size() int {
	if ix.hash != nil {
		ix.hmu.RLock()
		defer ix.hmu.RUnlock()
		n := 0
		for _, m := range ix.hash {
			n += len(m)
		}
		return n
	}
	return ix.ord.len()
}

// prefixEnd returns the smallest byte string greater than every string
// with prefix p, or nil when p is all 0xFF (open end).
func prefixEnd(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// idxEntryRef identifies one posting and its entry record.
type idxEntryRef struct {
	idx uint32
	key []byte
	oid uint64
	rid storage.RID
}

// idxDirty is one transaction's uncommitted index maintenance: postings
// added (removed again on abort) and postings whose entry record it
// deleted (moved to the graveyard on commit, forgotten on abort).
type idxDirty struct {
	adds []idxEntryRef
	dels []idxEntryRef
}

// idxGrave is a posting whose delete committed at ts, prunable once the
// snapshot floor passes it.
type idxGrave struct {
	ref idxEntryRef
	ts  uint64
}

// Manager owns the index catalog and directories, implements
// object.IndexHook for maintenance, storage apply-hook duty on followers,
// and the probe surface the planner compiles to.
type Manager struct {
	store *storage.Store
	reg   *object.Registry

	mu      sync.RWMutex
	byID    map[uint32]*index
	byClass map[string]map[string][]*index // class -> attr -> indexes
	nextID  uint32
	catRID  storage.RID
	hasCat  bool
	orphans []storage.RID // entry records with no live index, found at boot

	dirtyMu sync.Mutex
	dirty   map[uint64]*idxDirty

	graveMu sync.Mutex
	grave   []idxGrave

	opCount atomic.Uint64

	// counters (exported via RegisterMetrics)
	probes      atomic.Uint64 // equality probes served
	rangeScans  atomic.Uint64 // ordered range scans served
	extentScans atomic.Uint64 // queries that fell back to a full extent scan
	entryWrites atomic.Uint64 // entry records inserted
	rowsDropped atomic.Uint64 // candidates rejected by re-verification
}

// NewManager creates an index manager over the store and registry. Call
// Bootstrap before serving, and SetIndexHook(m) on the registry.
func NewManager(store *storage.Store, reg *object.Registry) *Manager {
	return &Manager{
		store:   store,
		reg:     reg,
		byID:    make(map[uint32]*index),
		byClass: make(map[string]map[string][]*index),
		dirty:   make(map[uint64]*idxDirty),
	}
}

func encodeEntry(idxID uint32, oid uint64, key []byte) []byte {
	b := make([]byte, 1+4+8+2+len(key))
	b[0] = entryMagic
	binary.BigEndian.PutUint32(b[1:], idxID)
	binary.BigEndian.PutUint64(b[5:], oid)
	binary.BigEndian.PutUint16(b[13:], uint16(len(key)))
	copy(b[15:], key)
	return b
}

func decodeEntry(data []byte) (idxID uint32, oid uint64, key []byte, ok bool) {
	if len(data) < 15 || data[0] != entryMagic {
		return 0, 0, nil, false
	}
	idxID = binary.BigEndian.Uint32(data[1:])
	oid = binary.BigEndian.Uint64(data[5:])
	n := int(binary.BigEndian.Uint16(data[13:]))
	if len(data) != 15+n {
		return 0, 0, nil, false
	}
	key = make([]byte, n)
	copy(key, data[15:])
	return idxID, oid, key, true
}

func encodeCatalog(defs []IndexDef) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(catMagic)
	if err := gob.NewEncoder(&buf).Encode(defs); err != nil {
		return nil, fmt.Errorf("query: encode catalog: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeCatalog(data []byte) ([]IndexDef, bool) {
	if len(data) == 0 || data[0] != catMagic {
		return nil, false
	}
	var defs []IndexDef
	if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(&defs); err != nil {
		return nil, false
	}
	return defs, true
}

// Bootstrap rebuilds the index catalog and all directories by one pass
// over the heap's latest state. Run at open — after recovery on a leader,
// over the resolved prefix on a follower — alongside the object
// registry's own Bootstrap.
func (m *Manager) Bootstrap() error {
	if m.store == nil {
		return nil
	}
	var (
		defs    []IndexDef
		catRID  storage.RID
		hasCat  bool
		posts   []idxEntryRef
		maxID   uint32
		orphans []storage.RID
	)
	err := m.store.ForEachRecordLatest(func(rid storage.RID, data []byte) error {
		if len(data) == 0 {
			return nil
		}
		switch data[0] {
		case catMagic:
			if ds, ok := decodeCatalog(data); ok {
				defs, catRID, hasCat = ds, rid, true
			}
		case entryMagic:
			if id, oid, key, ok := decodeEntry(data); ok {
				posts = append(posts, idxEntryRef{idx: id, key: key, oid: oid, rid: rid})
				if id > maxID {
					maxID = id
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	byID := make(map[uint32]*index, len(defs))
	byClass := make(map[string]map[string][]*index)
	for _, def := range defs {
		ix := makeIndex(def)
		byID[def.ID] = ix
		installByClass(byClass, ix)
		if def.ID > maxID {
			maxID = def.ID
		}
	}
	for _, p := range posts {
		if ix, ok := byID[p.idx]; ok {
			ix.add(p.key, p.oid, p.rid)
		} else {
			orphans = append(orphans, p.rid)
		}
	}
	m.mu.Lock()
	m.byID, m.byClass = byID, byClass
	m.catRID, m.hasCat = catRID, hasCat
	if maxID > m.nextID {
		m.nextID = maxID
	}
	m.orphans = orphans
	m.mu.Unlock()
	return nil
}

func installByClass(byClass map[string]map[string][]*index, ix *index) {
	attrs := byClass[ix.def.Class]
	if attrs == nil {
		attrs = make(map[string][]*index)
		byClass[ix.def.Class] = attrs
	}
	attrs[ix.def.Attr] = append(attrs[ix.def.Attr], ix)
}

func uninstallByClass(byClass map[string]map[string][]*index, ix *index) {
	attrs := byClass[ix.def.Class]
	list := attrs[ix.def.Attr]
	for i, cand := range list {
		if cand == ix {
			attrs[ix.def.Attr] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	if len(attrs[ix.def.Attr]) == 0 {
		delete(attrs, ix.def.Attr)
	}
	if len(attrs) == 0 {
		delete(byClass, ix.def.Class)
	}
}

func (m *Manager) installLocked(ix *index) {
	m.byID[ix.def.ID] = ix
	installByClass(m.byClass, ix)
}

func (m *Manager) uninstallLocked(ix *index) {
	delete(m.byID, ix.def.ID)
	uninstallByClass(m.byClass, ix)
}

// Defs lists the live index definitions, ordered by ID.
func (m *Manager) Defs() []IndexDef {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]IndexDef, 0, len(m.byID))
	for _, ix := range m.byID {
		out = append(out, ix.def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SweepOrphans deletes entry records found at boot that belong to no live
// index (a drop whose catalog update survived but whose entry deletes were
// interrupted leaves none under ARIES — this is defensive, for heaps
// written by older builds). Call in the leader's boot transaction.
func (m *Manager) SweepOrphans(tx *txn.Txn) (int, error) {
	m.mu.Lock()
	orphans := m.orphans
	m.orphans = nil
	m.mu.Unlock()
	if len(orphans) == 0 {
		return 0, nil
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return 0, err
	}
	for _, rid := range orphans {
		if err := tx.Delete(rid); err != nil {
			return 0, fmt.Errorf("query: sweep orphan %v: %w", rid, err)
		}
	}
	return len(orphans), nil
}

// dirtyFor returns (creating on first use) the transaction's index dirty
// set, registering the finisher that resolves it: parent-merge on
// subtransaction commit, graveyard on top-level commit, directory undo on
// abort.
func (m *Manager) dirtyFor(tx *txn.Txn) *idxDirty {
	id := tx.ID()
	m.dirtyMu.Lock()
	d, ok := m.dirty[id]
	if !ok {
		d = &idxDirty{}
		m.dirty[id] = d
		tx.OnFinish(func(st txn.Status) { m.finishTxn(tx, st) })
	}
	m.dirtyMu.Unlock()
	return d
}

func (m *Manager) finishTxn(tx *txn.Txn, st txn.Status) {
	id := tx.ID()
	m.dirtyMu.Lock()
	d := m.dirty[id]
	delete(m.dirty, id)
	m.dirtyMu.Unlock()
	if d == nil {
		return
	}
	if st != txn.Committed {
		// Abort: the storage layer undoes the entry records; mirror that in
		// the directories. Deletes pend until commit, so they just drop.
		for i := len(d.adds) - 1; i >= 0; i-- {
			ref := d.adds[i]
			if ix := m.indexByID(ref.idx); ix != nil {
				ix.removeIfRID(ref.key, ref.oid, ref.rid)
			}
		}
		return
	}
	if parent := tx.Parent(); parent != nil {
		pd := m.dirtyFor(parent)
		m.dirtyMu.Lock()
		pd.adds = append(pd.adds, d.adds...)
		pd.dels = append(pd.dels, d.dels...)
		m.dirtyMu.Unlock()
		return
	}
	// Top-level commit: added postings are simply live now; deleted ones
	// stay visible to older snapshots until the floor passes this commit.
	if len(d.dels) > 0 {
		ts := m.store.CommitTS()
		m.graveMu.Lock()
		for _, ref := range d.dels {
			m.grave = append(m.grave, idxGrave{ref: ref, ts: ts})
		}
		m.graveMu.Unlock()
	}
}

func (m *Manager) indexByID(id uint32) *index {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.byID[id]
}

// pruneGraves drops committed-delete postings no live snapshot can need.
func (m *Manager) pruneGraves() {
	floor := m.store.SnapshotFloor()
	m.graveMu.Lock()
	keep := m.grave[:0]
	var prune []idxGrave
	for _, g := range m.grave {
		if g.ts <= floor {
			prune = append(prune, g)
		} else {
			keep = append(keep, g)
		}
	}
	m.grave = keep
	m.graveMu.Unlock()
	for _, g := range prune {
		if ix := m.indexByID(g.ref.idx); ix != nil {
			ix.removeIfRID(g.ref.key, g.ref.oid, g.ref.rid)
		}
	}
}

func (m *Manager) maybePrune() {
	if n := m.opCount.Add(1); n%idxPruneEvery == 0 {
		m.pruneGraves()
	}
}

// indexesFor returns the live indexes over any attribute of class.
func (m *Manager) indexesFor(class string) []*index {
	m.mu.RLock()
	defer m.mu.RUnlock()
	attrs := m.byClass[class]
	if len(attrs) == 0 {
		return nil
	}
	var out []*index
	for _, list := range attrs {
		out = append(out, list...)
	}
	return out
}

// lookupIndex finds an index on class.attr, preferring kinds in the order
// given (first match wins).
func (m *Manager) lookupIndex(class, attr string, kinds ...IndexKind) *index {
	m.mu.RLock()
	defer m.mu.RUnlock()
	list := m.byClass[class][attr]
	for _, k := range kinds {
		for _, ix := range list {
			if ix.def.Kind == k {
				return ix
			}
		}
	}
	return nil
}

// writeEntry inserts one entry record and posts it, tracking it in the
// transaction's dirty set.
func (m *Manager) writeEntry(tx *txn.Txn, d *idxDirty, ix *index, oid uint64, key []byte) error {
	rid, err := tx.Insert(encodeEntry(ix.def.ID, oid, key))
	if err != nil {
		return err
	}
	ix.add(key, oid, rid)
	d.adds = append(d.adds, idxEntryRef{idx: ix.def.ID, key: key, oid: oid, rid: rid})
	m.entryWrites.Add(1)
	return nil
}

// dropEntry deletes the posting's entry record; the posting itself stays
// until the commit's graveyard resolution so older snapshots keep seeing
// the old value.
func (m *Manager) dropEntry(tx *txn.Txn, d *idxDirty, ix *index, oid uint64, key []byte) error {
	rid, ok := ix.getRID(key, oid)
	if !ok {
		return nil // value was unindexable or posting already superseded
	}
	if err := tx.Delete(rid); err != nil {
		return err
	}
	d.dels = append(d.dels, idxEntryRef{idx: ix.def.ID, key: key, oid: oid, rid: rid})
	return nil
}

// OnCreate implements object.IndexHook: post the new object under every
// index of its class. Runs under the caller's exclusive catalog lock.
func (m *Manager) OnCreate(tx *txn.Txn, class string, oid event.OID, rid storage.RID, attrs map[string]any) error {
	ixs := m.indexesFor(class)
	if len(ixs) == 0 {
		return nil
	}
	d := m.dirtyFor(tx)
	for _, ix := range ixs {
		key, ok := encodeKey(attrs[ix.def.Attr])
		if !ok {
			continue // unindexable value: the extent fallback still finds it
		}
		if err := m.writeEntry(tx, d, ix, uint64(oid), key); err != nil {
			return err
		}
	}
	m.maybePrune()
	return nil
}

// OnUpdate implements object.IndexHook: re-key postings whose indexed
// attribute changed.
func (m *Manager) OnUpdate(tx *txn.Txn, class string, oid event.OID, rid storage.RID, oldAttrs, newAttrs map[string]any) error {
	ixs := m.indexesFor(class)
	if len(ixs) == 0 {
		return nil
	}
	d := m.dirtyFor(tx)
	for _, ix := range ixs {
		oldKey, okOld := encodeKey(oldAttrs[ix.def.Attr])
		newKey, okNew := encodeKey(newAttrs[ix.def.Attr])
		if okOld && okNew && bytes.Equal(oldKey, newKey) {
			continue
		}
		if okOld {
			if err := m.dropEntry(tx, d, ix, uint64(oid), oldKey); err != nil {
				return err
			}
		}
		if okNew {
			if err := m.writeEntry(tx, d, ix, uint64(oid), newKey); err != nil {
				return err
			}
		}
	}
	m.maybePrune()
	return nil
}

// OnDelete implements object.IndexHook: drop the object's postings.
func (m *Manager) OnDelete(tx *txn.Txn, class string, oid event.OID, rid storage.RID, attrs map[string]any) error {
	ixs := m.indexesFor(class)
	if len(ixs) == 0 {
		return nil
	}
	d := m.dirtyFor(tx)
	for _, ix := range ixs {
		key, ok := encodeKey(attrs[ix.def.Attr])
		if !ok {
			continue
		}
		if err := m.dropEntry(tx, d, ix, uint64(oid), key); err != nil {
			return err
		}
	}
	m.maybePrune()
	return nil
}

// CreateIndex defines an index on class.attr and backfills it from the
// extent, all inside tx: the definition, the logical RecIdxCreate record,
// the catalog update and every backfill entry commit or abort atomically.
// The exclusive catalog lock serializes the backfill against writers.
func (m *Manager) CreateIndex(tx *txn.Txn, class, attr string, kind IndexKind) (IndexDef, error) {
	if m.store == nil {
		return IndexDef{}, ErrNotPersistent
	}
	if attr == "" {
		return IndexDef{}, ErrBadIndexAttr
	}
	if kind != HashIndex && kind != OrderedIndex {
		return IndexDef{}, fmt.Errorf("query: unknown index kind %d", kind)
	}
	if _, err := m.reg.Class(class); err != nil {
		return IndexDef{}, err
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return IndexDef{}, err
	}
	m.mu.Lock()
	for _, ix := range m.byClass[class][attr] {
		if ix.def.Kind == kind {
			m.mu.Unlock()
			return IndexDef{}, fmt.Errorf("%w: %s", ErrIndexExists, ix.def)
		}
	}
	m.nextID++
	def := IndexDef{ID: m.nextID, Class: class, Attr: attr, Kind: kind}
	ix := makeIndex(def)
	m.installLocked(ix)
	defs := m.defsLocked()
	m.mu.Unlock()

	onAbortChain(tx, func() {
		m.mu.Lock()
		m.uninstallLocked(ix)
		m.mu.Unlock()
	})

	payload, err := gobEncodeDef(def)
	if err != nil {
		return IndexDef{}, err
	}
	if err := m.store.LogIndexOp(tx.ID(), storage.RecIdxCreate, payload); err != nil {
		return IndexDef{}, err
	}
	if err := m.writeCatalog(tx, defs); err != nil {
		return IndexDef{}, err
	}

	// Backfill the extent under the same transaction.
	d := m.dirtyFor(tx)
	var ferr error
	err = m.reg.ForEach(tx, class, false, func(inst *object.Instance) bool {
		key, ok := encodeKey(inst.Attrs()[attr])
		if !ok {
			return true
		}
		if ferr = m.writeEntry(tx, d, ix, uint64(inst.OID), key); ferr != nil {
			return false
		}
		return true
	})
	if err == nil {
		err = ferr
	}
	if err != nil {
		return IndexDef{}, fmt.Errorf("query: backfill %s: %w", def, err)
	}
	return def, nil
}

// DropIndex removes the index on class.attr of the given kind: catalog
// update, RecIdxDrop record, and deletion of every entry record, in tx.
func (m *Manager) DropIndex(tx *txn.Txn, class, attr string, kind IndexKind) error {
	if m.store == nil {
		return ErrNotPersistent
	}
	if err := tx.Lock(catalogLock, lockmgr.Exclusive); err != nil {
		return err
	}
	m.mu.Lock()
	var ix *index
	for _, cand := range m.byClass[class][attr] {
		if cand.def.Kind == kind {
			ix = cand
			break
		}
	}
	if ix == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s(%s.%s)", ErrNoIndex, kind, class, attr)
	}
	m.uninstallLocked(ix)
	defs := m.defsLocked()
	m.mu.Unlock()

	onAbortChain(tx, func() {
		m.mu.Lock()
		m.installLocked(ix)
		m.mu.Unlock()
	})

	payload, err := gobEncodeDef(ix.def)
	if err != nil {
		return err
	}
	if err := m.store.LogIndexOp(tx.ID(), storage.RecIdxDrop, payload); err != nil {
		return err
	}
	if err := m.writeCatalog(tx, defs); err != nil {
		return err
	}
	for _, ref := range ix.entries() {
		if err := tx.Delete(ref.rid); err != nil {
			return fmt.Errorf("query: drop %s: %w", ix.def, err)
		}
	}
	return nil
}

func (m *Manager) defsLocked() []IndexDef {
	out := make([]IndexDef, 0, len(m.byID))
	for _, ix := range m.byID {
		out = append(out, ix.def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// writeCatalog persists the definition list, tracking the catalog
// record's location across relocations and aborts.
func (m *Manager) writeCatalog(tx *txn.Txn, defs []IndexDef) error {
	data, err := encodeCatalog(defs)
	if err != nil {
		return err
	}
	m.mu.Lock()
	prevRID, prevHas := m.catRID, m.hasCat
	m.mu.Unlock()
	var newRID storage.RID
	if prevHas {
		newRID, err = tx.Update(prevRID, data)
	} else {
		newRID, err = tx.Insert(data)
	}
	if err != nil {
		return err
	}
	if newRID != prevRID || !prevHas {
		m.mu.Lock()
		m.catRID, m.hasCat = newRID, true
		m.mu.Unlock()
		onAbortChain(tx, func() {
			m.mu.Lock()
			m.catRID, m.hasCat = prevRID, prevHas
			m.mu.Unlock()
		})
	}
	return nil
}

// onAbortChain runs fn exactly once if tx or ANY of its ancestors aborts —
// a subtransaction's effects only stick if the whole chain up to the root
// commits, so in-memory DDL state must unwind on the first abort anywhere
// along it. Finishers within one transaction run newest-first, so nested
// DDL undo unwinds in reverse order of the changes.
func onAbortChain(tx *txn.Txn, fn func()) {
	var once sync.Once
	for t := tx; t != nil; t = t.Parent() {
		t.OnFinish(func(st txn.Status) {
			if st != txn.Committed {
				once.Do(fn)
			}
		})
	}
}

func gobEncodeDef(def IndexDef) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(def); err != nil {
		return nil, fmt.Errorf("query: encode def: %w", err)
	}
	return buf.Bytes(), nil
}

func gobDecodeDef(data []byte) (IndexDef, bool) {
	var def IndexDef
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&def); err != nil {
		return IndexDef{}, false
	}
	return def, def.ID != 0
}

// ApplyRecord is the storage apply hook on followers (and after deferred
// replays): it mirrors committed record traffic into the definitions and
// directories. Called serially in LSN order after page effects complete.
func (m *Manager) ApplyRecord(rec *storage.LogRecord) {
	switch rec.Type {
	case storage.RecInsert:
		m.applyUpsert(rec.After, rec.RID)
	case storage.RecUpdate:
		m.applyUpsert(rec.After, rec.RID)
	case storage.RecDelete:
		if len(rec.Before) == 0 || rec.Before[0] != entryMagic {
			return
		}
		id, oid, key, ok := decodeEntry(rec.Before)
		if !ok {
			return
		}
		if m.indexByID(id) == nil {
			return
		}
		ts := m.store.CommitTS()
		m.graveMu.Lock()
		m.grave = append(m.grave, idxGrave{ref: idxEntryRef{idx: id, key: key, oid: oid, rid: rec.RID}, ts: ts})
		m.graveMu.Unlock()
		m.maybePrune()
	case storage.RecIdxCreate:
		if def, ok := gobDecodeDef(rec.After); ok {
			m.mu.Lock()
			if old := m.byID[def.ID]; old != nil {
				m.uninstallLocked(old)
			}
			m.installLocked(makeIndex(def))
			if def.ID > m.nextID {
				m.nextID = def.ID
			}
			m.mu.Unlock()
		}
	case storage.RecIdxDrop:
		if def, ok := gobDecodeDef(rec.After); ok {
			m.mu.Lock()
			if ix := m.byID[def.ID]; ix != nil {
				m.uninstallLocked(ix)
			}
			m.mu.Unlock()
		}
	}
}

func (m *Manager) applyUpsert(data []byte, rid storage.RID) {
	if len(data) == 0 {
		return
	}
	switch data[0] {
	case entryMagic:
		if id, oid, key, ok := decodeEntry(data); ok {
			if ix := m.indexByID(id); ix != nil {
				ix.add(key, oid, rid)
			}
		}
	case catMagic:
		m.mu.Lock()
		m.catRID, m.hasCat = rid, true
		m.mu.Unlock()
	}
}

// Stats reports probe/scan/maintenance counters (tests, debugz).
func (m *Manager) Stats() (probes, rangeScans, extentScans, entryWrites, rowsDropped uint64) {
	return m.probes.Load(), m.rangeScans.Load(), m.extentScans.Load(),
		m.entryWrites.Load(), m.rowsDropped.Load()
}

// RegisterMetrics wires the query engine into a metrics registry.
func (m *Manager) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sentinel_query_index_probes_total",
		"Equality probes served from an index directory.", m.probes.Load)
	r.CounterFunc("sentinel_query_index_range_scans_total",
		"Range scans served from an ordered index.", m.rangeScans.Load)
	r.CounterFunc("sentinel_query_extent_scans_total",
		"Queries answered by a full extent scan (no usable index).", m.extentScans.Load)
	r.CounterFunc("sentinel_query_index_entries_written_total",
		"Index entry records inserted (create, update re-key, backfill).", m.entryWrites.Load)
	r.CounterFunc("sentinel_query_reverify_drops_total",
		"Index candidates rejected by load-time re-verification.", m.rowsDropped.Load)
	r.GaugeFunc("sentinel_query_indexes",
		"Live secondary indexes.", func() float64 {
			m.mu.RLock()
			defer m.mu.RUnlock()
			return float64(len(m.byID))
		})
	r.GaugeFunc("sentinel_query_index_postings",
		"Directory postings across all indexes.", func() float64 {
			m.mu.RLock()
			ixs := make([]*index, 0, len(m.byID))
			for _, ix := range m.byID {
				ixs = append(ixs, ix)
			}
			m.mu.RUnlock()
			n := 0
			for _, ix := range ixs {
				n += ix.size()
			}
			return float64(n)
		})
	r.GaugeFunc("sentinel_query_index_graveyard",
		"Committed-delete postings awaiting the snapshot floor.", func() float64 {
			m.graveMu.Lock()
			defer m.graveMu.Unlock()
			return float64(len(m.grave))
		})
}
