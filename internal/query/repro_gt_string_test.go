package query

import (
	"reflect"
	"testing"
)

func TestGtStringPrefixPushdown(t *testing.T) {
	e := newEnv(t)
	defer e.close()

	tx := e.begin()
	for _, sym := range []string{"a", "ab", "abc", "b"} {
		if _, err := e.reg.New(tx, "STOCK", map[string]any{"sym": sym}); err != nil {
			t.Fatal(err)
		}
	}
	e.commit(tx)

	tx = e.begin()
	if _, err := e.qm.CreateIndex(tx, "STOCK", "sym", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)

	tx = e.begin()
	defer tx.Commit()
	pred := Gt("sym", "a")
	want := e.scanOracle(tx, "STOCK", false, pred)
	got := e.runOIDs(tx, Q{Class: "STOCK", Where: pred})
	t.Logf("plan: %s", e.qm.Explain(Q{Class: "STOCK", Where: pred}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Gt(sym, \"a\"): indexed got %v, oracle %v", got, want)
	}
}
