// Package query is Sentinel's declarative condition and query engine:
// composable streaming relational-algebra iterators (select, project,
// join, group-aggregate, sort, limit) over the object store, persistent
// secondary indexes (hash and ordered) maintained through the storage
// manager's WAL so they crash-recover and replicate with the data, and a
// small planner that compiles predicate trees into iterator plans with
// equality/range conjuncts pushed down to index scans.
//
// Rule conditions expressed as predicates (rules.Spec.Where) evaluate
// through the planner against the firing transaction's snapshot, turning
// the condition leg of an E-C-A firing from an opaque O(extent) Go func
// into an optimizable O(log n) probe.
package query

import (
	"fmt"
	"strings"
)

// Pred is a predicate over an object's attribute map. Predicates are
// immutable expression trees the planner can inspect: comparison leaves
// over one attribute each, combined with And/Or/Not.
type Pred interface {
	// Eval reports whether the attributes satisfy the predicate.
	// Comparisons between incomparable types are false.
	Eval(attrs map[string]any) bool
	String() string
}

type cmpOp uint8

const (
	opEq cmpOp = iota + 1
	opNe
	opLt
	opLe
	opGt
	opGe
)

func (o cmpOp) String() string {
	switch o {
	case opEq:
		return "="
	case opNe:
		return "!="
	case opLt:
		return "<"
	case opLe:
		return "<="
	case opGt:
		return ">"
	case opGe:
		return ">="
	}
	return "?"
}

// cmp is a comparison leaf: attr OP literal.
type cmp struct {
	attr string
	op   cmpOp
	val  any
}

func (c *cmp) Eval(attrs map[string]any) bool {
	v, ok := attrs[c.attr]
	if !ok {
		v = nil
	}
	rel, comparable := compareValues(v, c.val)
	if !comparable {
		return c.op == opNe // incomparable values are unequal, nothing more
	}
	switch c.op {
	case opEq:
		return rel == 0
	case opNe:
		return rel != 0
	case opLt:
		return rel < 0
	case opLe:
		return rel <= 0
	case opGt:
		return rel > 0
	case opGe:
		return rel >= 0
	}
	return false
}

func (c *cmp) String() string {
	return fmt.Sprintf("%s %s %v", c.attr, c.op, c.val)
}

// Eq matches attr == v.
func Eq(attr string, v any) Pred { return &cmp{attr: attr, op: opEq, val: v} }

// Ne matches attr != v.
func Ne(attr string, v any) Pred { return &cmp{attr: attr, op: opNe, val: v} }

// Lt matches attr < v.
func Lt(attr string, v any) Pred { return &cmp{attr: attr, op: opLt, val: v} }

// Le matches attr <= v.
func Le(attr string, v any) Pred { return &cmp{attr: attr, op: opLe, val: v} }

// Gt matches attr > v.
func Gt(attr string, v any) Pred { return &cmp{attr: attr, op: opGt, val: v} }

// Ge matches attr >= v.
func Ge(attr string, v any) Pred { return &cmp{attr: attr, op: opGe, val: v} }

// Between matches lo <= attr <= hi.
func Between(attr string, lo, hi any) Pred {
	return And(Ge(attr, lo), Le(attr, hi))
}

type andPred struct{ kids []Pred }

func (a *andPred) Eval(attrs map[string]any) bool {
	for _, k := range a.kids {
		if !k.Eval(attrs) {
			return false
		}
	}
	return true
}

func (a *andPred) String() string { return joinPreds(a.kids, " AND ") }

type orPred struct{ kids []Pred }

func (o *orPred) Eval(attrs map[string]any) bool {
	for _, k := range o.kids {
		if k.Eval(attrs) {
			return true
		}
	}
	return false
}

func (o *orPred) String() string { return joinPreds(o.kids, " OR ") }

type notPred struct{ kid Pred }

func (n *notPred) Eval(attrs map[string]any) bool { return !n.kid.Eval(attrs) }
func (n *notPred) String() string                 { return "NOT (" + n.kid.String() + ")" }

func joinPreds(kids []Pred, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = "(" + k.String() + ")"
	}
	return strings.Join(parts, sep)
}

// And matches when every predicate matches (true for no predicates).
func And(ps ...Pred) Pred {
	flat := make([]Pred, 0, len(ps))
	for _, p := range ps {
		if a, ok := p.(*andPred); ok {
			flat = append(flat, a.kids...)
		} else if p != nil {
			flat = append(flat, p)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &andPred{kids: flat}
}

// Or matches when any predicate matches (false for no predicates).
func Or(ps ...Pred) Pred {
	flat := make([]Pred, 0, len(ps))
	for _, p := range ps {
		if o, ok := p.(*orPred); ok {
			flat = append(flat, o.kids...)
		} else if p != nil {
			flat = append(flat, p)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &orPred{kids: flat}
}

// Not negates a predicate.
func Not(p Pred) Pred { return &notPred{kid: p} }

// conjuncts returns the top-level AND factors of p — the units predicate
// pushdown works on. A non-AND predicate is its own single conjunct.
func conjuncts(p Pred) []Pred {
	if p == nil {
		return nil
	}
	if a, ok := p.(*andPred); ok {
		return a.kids
	}
	return []Pred{p}
}

// indexBound describes what one comparison conjunct asks of an index on
// its attribute: an exact key or a half-open/closed range side.
type indexBound struct {
	attr  string
	eq    bool
	eqVal any
	lo    any
	loInc bool
	hasLo bool
	hi    any
	hiInc bool
	hasHi bool
}

// boundOf extracts the index-bindable bound from a conjunct, ok=false for
// conjuncts that cannot drive an index scan (Ne, Or, Not, nested And).
func boundOf(p Pred) (indexBound, bool) {
	c, ok := p.(*cmp)
	if !ok {
		return indexBound{}, false
	}
	b := indexBound{attr: c.attr}
	switch c.op {
	case opEq:
		b.eq, b.eqVal = true, c.val
	case opLt:
		b.hi, b.hiInc, b.hasHi = c.val, false, true
	case opLe:
		b.hi, b.hiInc, b.hasHi = c.val, true, true
	case opGt:
		b.lo, b.loInc, b.hasLo = c.val, false, true
	case opGe:
		b.lo, b.loInc, b.hasLo = c.val, true, true
	default:
		return indexBound{}, false
	}
	return b, true
}
