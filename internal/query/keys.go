package query

import (
	"encoding/binary"
	"math"
)

// Index keys use an order-preserving byte encoding so the ordered index
// can answer range scans with plain bytewise comparison. A one-byte type
// tag totally orders across types (null < bool < number < string); all
// numeric Go types normalize to float64 so 3, int64(3) and 3.0 index and
// probe identically.
const (
	kindNull byte = 0x00
	kindBool byte = 0x01
	kindNum  byte = 0x02
	kindStr  byte = 0x03
)

// normalize converts any supported attribute value to its canonical
// comparable form: nil, bool, float64 or string. ok=false for values the
// index cannot key (maps, slices, structs...).
func normalize(v any) (any, bool) {
	switch x := v.(type) {
	case nil:
		return nil, true
	case bool:
		return x, true
	case int:
		return float64(x), true
	case int8:
		return float64(x), true
	case int16:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint:
		return float64(x), true
	case uint8:
		return float64(x), true
	case uint16:
		return float64(x), true
	case uint32:
		return float64(x), true
	case uint64:
		return float64(x), true
	case float32:
		return float64(x), true
	case float64:
		return x, true
	case string:
		return x, true
	}
	return nil, false
}

// compareValues totally orders two normalized-comparable values.
// comparable=false when either side fails to normalize or the sides are
// different kinds except through the cross-type kind order, which IS
// comparable (null < bool < number < string) — matching key-encoding
// order so predicate Eval and index scans agree.
func compareValues(a, b any) (rel int, comparable bool) {
	na, okA := normalize(a)
	nb, okB := normalize(b)
	if !okA || !okB {
		return 0, false
	}
	ka, kb := kindOf(na), kindOf(nb)
	if ka != kb {
		if ka < kb {
			return -1, true
		}
		return 1, true
	}
	switch ka {
	case kindNull:
		return 0, true
	case kindBool:
		ba, bb := na.(bool), nb.(bool)
		if ba == bb {
			return 0, true
		}
		if !ba {
			return -1, true
		}
		return 1, true
	case kindNum:
		fa, fb := na.(float64), nb.(float64)
		if fa < fb {
			return -1, true
		}
		if fa > fb {
			return 1, true
		}
		return 0, true
	case kindStr:
		sa, sb := na.(string), nb.(string)
		if sa < sb {
			return -1, true
		}
		if sa > sb {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func kindOf(normalized any) byte {
	switch normalized.(type) {
	case nil:
		return kindNull
	case bool:
		return kindBool
	case float64:
		return kindNum
	case string:
		return kindStr
	}
	return 0xFF
}

// encodeKey renders a normalized-comparable value as an order-preserving
// byte string: bytewise comparison of encodings matches compareValues.
// ok=false for unindexable values.
func encodeKey(v any) ([]byte, bool) {
	n, ok := normalize(v)
	if !ok {
		return nil, false
	}
	switch x := n.(type) {
	case nil:
		return []byte{kindNull}, true
	case bool:
		if x {
			return []byte{kindBool, 1}, true
		}
		return []byte{kindBool, 0}, true
	case float64:
		// IEEE-754 order fix: flip all bits of negatives, set the sign bit
		// of non-negatives; big-endian bytes then sort numerically.
		bits := math.Float64bits(x)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		out := make([]byte, 9)
		out[0] = kindNum
		binary.BigEndian.PutUint64(out[1:], bits)
		return out, true
	case string:
		out := make([]byte, 1+len(x))
		out[0] = kindStr
		copy(out[1:], x)
		return out, true
	}
	return nil, false
}
