package query

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/event"
	"repro/internal/lockmgr"
	"repro/internal/object"
	"repro/internal/storage"
	"repro/internal/txn"
)

// env wires a real store, registry and index manager the way the facade
// does, so every test exercises the production maintenance path.
type env struct {
	t   *testing.T
	dir string
	st  *storage.Store
	tm  *txn.Manager
	reg *object.Registry
	qm  *Manager
}

func openEnv(t *testing.T, dir string) *env {
	t.Helper()
	st, err := storage.Open(storage.Options{Dir: dir, PoolSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	tm := txn.NewManager(st, lockmgr.New())
	reg := object.NewRegistry(nil, st)
	qm := NewManager(st, reg)
	reg.SetIndexHook(qm)
	tx, err := tm.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.InitCatalog(tx); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := qm.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	e := &env{t: t, dir: dir, st: st, tm: tm, reg: reg, qm: qm}
	e.mustClass("SECURITY", "")
	e.mustClass("STOCK", "SECURITY")
	e.mustClass("BOND", "SECURITY")
	return e
}

func newEnv(t *testing.T) *env { return openEnv(t, t.TempDir()) }

func (e *env) mustClass(name, super string) {
	if _, err := e.reg.DefineClass(name, super, false); err != nil {
		e.t.Fatal(err)
	}
}

func (e *env) close() {
	if err := e.st.Close(); err != nil {
		e.t.Fatal(err)
	}
}

// reopen simulates a restart: close everything, open from the same dir.
func (e *env) reopen() *env {
	e.close()
	return openEnv(e.t, e.dir)
}

func (e *env) begin() *txn.Txn {
	tx, err := e.tm.Begin()
	if err != nil {
		e.t.Fatal(err)
	}
	return tx
}

func (e *env) commit(tx *txn.Txn) {
	if err := tx.Commit(); err != nil {
		e.t.Fatal(err)
	}
}

// seedStocks creates n STOCK objects with price i%mod and tier strings.
func (e *env) seedStocks(n, mod int) {
	tx := e.begin()
	for i := 0; i < n; i++ {
		_, err := e.reg.New(tx, "STOCK", map[string]any{
			"sym":   fmt.Sprintf("S%04d", i),
			"price": i % mod,
			"tier":  fmt.Sprintf("T%d", i%3),
		})
		if err != nil {
			e.t.Fatal(err)
		}
	}
	e.commit(tx)
}

// scanOracle answers the query the slow, trustworthy way: full extent
// walk with predicate evaluation, no index involvement.
func (e *env) scanOracle(tx *txn.Txn, class string, subs bool, p Pred) []uint64 {
	var got []uint64
	err := e.reg.ForEach(tx, class, subs, func(inst *object.Instance) bool {
		if p == nil || p.Eval(inst.Attrs()) {
			got = append(got, uint64(inst.OID))
		}
		return true
	})
	if err != nil {
		e.t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	return got
}

func rowOIDs(rows []Row) []uint64 {
	out := make([]uint64, len(rows))
	for i, r := range rows {
		out[i] = uint64(r.OID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (e *env) runOIDs(tx *txn.Txn, q Q) []uint64 {
	rows, err := e.qm.Run(tx, q)
	if err != nil {
		e.t.Fatal(err)
	}
	return rowOIDs(rows)
}

// checkOracle asserts query result ≡ oracle for the predicate.
func (e *env) checkOracle(tx *txn.Txn, class string, p Pred) {
	e.t.Helper()
	got := e.runOIDs(tx, Q{Class: class, Where: p})
	want := e.scanOracle(tx, class, false, p)
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		e.t.Fatalf("query %v: got %v want %v (plan: %s)",
			p, got, want, e.qm.Explain(Q{Class: class, Where: p}))
	}
}

func TestKeyEncodingOrderMatchesCompare(t *testing.T) {
	vals := []any{nil, false, true, -1e300, -42.5, -1, 0, 0.5, 3, int64(3), 3.0,
		uint8(7), 1e300, "", "a", "ab", "b", "zzz"}
	for _, a := range vals {
		for _, b := range vals {
			ka, okA := encodeKey(a)
			kb, okB := encodeKey(b)
			if !okA || !okB {
				t.Fatalf("encodeKey failed for %v / %v", a, b)
			}
			rel, cmp := compareValues(a, b)
			if !cmp {
				t.Fatalf("compareValues(%v, %v) not comparable", a, b)
			}
			if got := bytes.Compare(ka, kb); (got < 0) != (rel < 0) || (got == 0) != (rel == 0) {
				t.Fatalf("order mismatch %v vs %v: bytes %d compare %d", a, b, got, rel)
			}
		}
	}
}

func TestPredEval(t *testing.T) {
	attrs := map[string]any{"price": 10, "tier": "T1"}
	cases := []struct {
		p    Pred
		want bool
	}{
		{Eq("price", 10), true},
		{Eq("price", 10.0), true},
		{Eq("price", 11), false},
		{Ne("price", 11), true},
		{Lt("price", 11), true},
		{Ge("price", 10), true},
		{Gt("price", 10), false},
		{Between("price", 5, 15), true},
		{Between("price", 11, 15), false},
		{Eq("tier", "T1"), true},
		{Lt("tier", "T2"), true},
		{And(Eq("price", 10), Eq("tier", "T1")), true},
		{And(Eq("price", 10), Eq("tier", "T2")), false},
		{Or(Eq("price", 99), Eq("tier", "T1")), true},
		{Not(Eq("price", 10)), false},
		{Eq("missing", nil), true},
		{Gt("price", "a-string"), false}, // num < str in the cross-type order
		{Lt("price", "a-string"), true},
	}
	for _, c := range cases {
		if got := c.p.Eval(attrs); got != c.want {
			t.Errorf("%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSkiplistBasics(t *testing.T) {
	s := newSkiplist()
	for i := 99; i >= 0; i-- {
		key, _ := encodeKey(i)
		s.set(okey(key, uint64(i)), skipVal{oid: uint64(i)})
	}
	if s.len() != 100 {
		t.Fatalf("len = %d", s.len())
	}
	var seen []uint64
	s.scan(nil, nil, func(_ []byte, v skipVal) bool {
		seen = append(seen, v.oid)
		return true
	})
	for i, oid := range seen {
		if oid != uint64(i) {
			t.Fatalf("scan out of order at %d: %d", i, oid)
		}
	}
	lo, _ := encodeKey(10)
	hi, _ := encodeKey(20)
	var ranged []uint64
	s.scan(lo, hi, func(_ []byte, v skipVal) bool {
		ranged = append(ranged, v.oid)
		return true
	})
	if len(ranged) != 10 || ranged[0] != 10 || ranged[9] != 19 {
		t.Fatalf("range scan [10,20): %v", ranged)
	}
	key, _ := encodeKey(50)
	s.del(okey(key, 50))
	if _, ok := s.get(okey(key, 50)); ok || s.len() != 99 {
		t.Fatal("delete failed")
	}
}

func TestIndexProbeMatchesScan(t *testing.T) {
	e := newEnv(t)
	defer e.close()
	e.seedStocks(300, 50)

	tx := e.begin()
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", HashIndex); err != nil {
		t.Fatal(err)
	}
	if _, err := e.qm.CreateIndex(tx, "STOCK", "tier", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)

	tx = e.begin()
	defer e.commit(tx)
	e.checkOracle(tx, "STOCK", Eq("price", 7))
	e.checkOracle(tx, "STOCK", Eq("price", 9999)) // no hits
	e.checkOracle(tx, "STOCK", Eq("tier", "T2"))
	e.checkOracle(tx, "STOCK", And(Eq("price", 7), Eq("tier", "T1")))

	probes, _, extents, _, _ := e.qm.Stats()
	if probes == 0 {
		t.Fatal("no index probes recorded")
	}
	if plan := e.qm.Explain(Q{Class: "STOCK", Where: Eq("price", 7)}); plan[:10] != "IndexProbe" {
		t.Fatalf("expected IndexProbe plan, got %s", plan)
	}
	// Subclass-widened queries must not use the exact-class index.
	before := extents
	_ = e.runOIDs(tx, Q{Class: "SECURITY", Subclasses: true, Where: Eq("price", 7)})
	if _, _, after, _, _ := e.qm.Stats(); after != before+1 {
		t.Fatal("subtree query should fall back to extent scan")
	}
}

func TestOrderedRangeMatchesScan(t *testing.T) {
	e := newEnv(t)
	defer e.close()
	e.seedStocks(200, 100)

	tx := e.begin()
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)

	tx = e.begin()
	defer e.commit(tx)
	for _, p := range []Pred{
		Between("price", 10, 20),
		And(Gt("price", 10), Lt("price", 20)),
		Ge("price", 95),
		Lt("price", 5),
		And(Ge("price", 30), Le("price", 30)),
		Between("price", 60, 50), // empty interval
	} {
		e.checkOracle(tx, "STOCK", p)
	}
	if _, ranges, _, _, _ := e.qm.Stats(); ranges == 0 {
		t.Fatal("no range scans recorded")
	}
}

func TestMaintenanceUpdateDeleteAbort(t *testing.T) {
	e := newEnv(t)
	defer e.close()

	tx := e.begin()
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	obj, err := e.reg.New(tx, "STOCK", map[string]any{"price": 5})
	if err != nil {
		t.Fatal(err)
	}
	e.commit(tx)

	// Committed update re-keys the posting.
	tx = e.begin()
	loaded, err := e.reg.Load(tx, obj.OID)
	if err != nil {
		t.Fatal(err)
	}
	loaded.Attrs()["price"] = 50
	if err := e.reg.Persist(tx, loaded); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)

	tx = e.begin()
	e.checkOracle(tx, "STOCK", Eq("price", 5))
	e.checkOracle(tx, "STOCK", Eq("price", 50))
	if got := e.runOIDs(tx, Q{Class: "STOCK", Where: Eq("price", 50)}); len(got) != 1 {
		t.Fatalf("want the re-keyed object, got %v", got)
	}
	e.commit(tx)

	// Aborted update leaves the index unchanged.
	tx = e.begin()
	loaded, err = e.reg.Load(tx, obj.OID)
	if err != nil {
		t.Fatal(err)
	}
	loaded.Attrs()["price"] = 7777
	if err := e.reg.Persist(tx, loaded); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	tx = e.begin()
	e.checkOracle(tx, "STOCK", Eq("price", 7777))
	e.checkOracle(tx, "STOCK", Eq("price", 50))
	e.commit(tx)

	// Committed delete removes the object from probes.
	tx = e.begin()
	if err := e.reg.Delete(tx, obj.OID); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)
	tx = e.begin()
	if got := e.runOIDs(tx, Q{Class: "STOCK", Where: Eq("price", 50)}); len(got) != 0 {
		t.Fatalf("deleted object still probed: %v", got)
	}
	e.commit(tx)
}

func TestIndexSurvivesReopen(t *testing.T) {
	e := newEnv(t)
	e.seedStocks(100, 10)
	tx := e.begin()
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", HashIndex); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)

	e = e.reopen()
	defer e.close()
	defs := e.qm.Defs()
	if len(defs) != 1 || defs[0].Class != "STOCK" || defs[0].Attr != "price" || defs[0].Kind != HashIndex {
		t.Fatalf("defs after reopen: %v", defs)
	}
	tx = e.begin()
	defer e.commit(tx)
	e.checkOracle(tx, "STOCK", Eq("price", 3))
	if probes, _, _, _, _ := e.qm.Stats(); probes == 0 {
		t.Fatal("reopened index not used")
	}
}

func TestCreateIndexAbortUninstalls(t *testing.T) {
	e := newEnv(t)
	defer e.close()
	e.seedStocks(20, 5)

	tx := e.begin()
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", HashIndex); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if defs := e.qm.Defs(); len(defs) != 0 {
		t.Fatalf("aborted index still installed: %v", defs)
	}
	// The abort must have unwound the backfill entries too: recreate and
	// verify against the oracle.
	tx = e.begin()
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", HashIndex); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)
	tx = e.begin()
	defer e.commit(tx)
	e.checkOracle(tx, "STOCK", Eq("price", 2))
}

func TestDropIndex(t *testing.T) {
	e := newEnv(t)
	e.seedStocks(50, 10)
	tx := e.begin()
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)
	tx = e.begin()
	if err := e.qm.DropIndex(tx, "STOCK", "price", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)
	if defs := e.qm.Defs(); len(defs) != 0 {
		t.Fatalf("dropped index still installed: %v", defs)
	}
	tx = e.begin()
	e.checkOracle(tx, "STOCK", Eq("price", 3)) // falls back to scan
	e.commit(tx)

	// After reopen, no orphaned entry records should resurface.
	e = e.reopen()
	defer e.close()
	if defs := e.qm.Defs(); len(defs) != 0 {
		t.Fatalf("dropped index resurrected: %v", defs)
	}
	tx = e.begin()
	if n, err := e.qm.SweepOrphans(tx); err != nil || n != 0 {
		t.Fatalf("orphans after clean drop: n=%d err=%v", n, err)
	}
	e.commit(tx)
}

func TestOrphanSweep(t *testing.T) {
	e := newEnv(t)
	// Plant an entry record for an index that never existed.
	tx := e.begin()
	key, _ := encodeKey(1)
	if _, err := tx.Insert(encodeEntry(999, 12345, key)); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)

	e = e.reopen()
	tx = e.begin()
	n, err := e.qm.SweepOrphans(tx)
	if err != nil || n != 1 {
		t.Fatalf("sweep: n=%d err=%v", n, err)
	}
	e.commit(tx)
	e = e.reopen()
	defer e.close()
	tx = e.begin()
	if n, err := e.qm.SweepOrphans(tx); err != nil || n != 0 {
		t.Fatalf("second sweep: n=%d err=%v", n, err)
	}
	e.commit(tx)
}

func TestSnapshotSeesOldKey(t *testing.T) {
	e := newEnv(t)
	defer e.close()
	tx := e.begin()
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", HashIndex); err != nil {
		t.Fatal(err)
	}
	obj, err := e.reg.New(tx, "STOCK", map[string]any{"price": 5})
	if err != nil {
		t.Fatal(err)
	}
	e.commit(tx)

	snap, err := e.tm.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent committed re-key 5 -> 50.
	tx = e.begin()
	loaded, err := e.reg.Load(tx, obj.OID)
	if err != nil {
		t.Fatal(err)
	}
	loaded.Attrs()["price"] = 50
	if err := e.reg.Persist(tx, loaded); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)

	// The snapshot still sees price=5 — via the graveyarded posting.
	if got := e.runOIDs(snap, Q{Class: "STOCK", Where: Eq("price", 5)}); len(got) != 1 {
		t.Fatalf("snapshot lost the old key: %v", got)
	}
	if got := e.runOIDs(snap, Q{Class: "STOCK", Where: Eq("price", 50)}); len(got) != 0 {
		t.Fatalf("snapshot sees the future: %v", got)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	// A fresh transaction sees the new key.
	tx = e.begin()
	defer e.commit(tx)
	if got := e.runOIDs(tx, Q{Class: "STOCK", Where: Eq("price", 50)}); len(got) != 1 {
		t.Fatalf("current view missing re-key: %v", got)
	}
}

func TestOperators(t *testing.T) {
	e := newEnv(t)
	defer e.close()
	tx := e.begin()
	for i := 0; i < 10; i++ {
		if _, err := e.reg.New(tx, "STOCK", map[string]any{
			"sym": fmt.Sprintf("S%d", i), "price": i, "sector": fmt.Sprintf("sec%d", i%2),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := e.reg.New(tx, "BOND", map[string]any{
			"sector": fmt.Sprintf("sec%d", i), "rating": 10 * (i + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.commit(tx)

	tx = e.begin()
	defer e.commit(tx)

	// Sort + limit + project.
	rows, err := e.qm.Run(tx, Q{Class: "STOCK", OrderBy: "price", Desc: true,
		Limit: 3, Project: []string{"sym"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Attrs["sym"] != "S9" || rows[2].Attrs["sym"] != "S7" {
		t.Fatalf("sort/limit/project: %+v", rows)
	}
	if _, ok := rows[0].Attrs["price"]; ok {
		t.Fatal("projection leaked price")
	}

	// Join STOCK -> BOND on sector.
	rows, err = e.qm.Run(tx, Q{Class: "STOCK", Where: Lt("price", 2),
		Join: &Join{Class: "BOND", LeftAttr: "sector", RightAttr: "sector"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("join rows: %+v", rows)
	}
	for _, r := range rows {
		if r.Attrs["BOND.rating"] == nil {
			t.Fatalf("join missing right attrs: %+v", r)
		}
	}

	// Group-aggregate.
	rows, err = e.qm.Run(tx, Q{Class: "STOCK", GroupBy: []string{"sector"},
		Aggs: []Agg{{Op: Count}, {Op: Sum, Attr: "price"}, {Op: Max, Attr: "price"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups: %+v", rows)
	}
	bySector := map[string]map[string]any{}
	for _, r := range rows {
		bySector[r.Attrs["sector"].(string)] = r.Attrs
	}
	if bySector["sec0"]["count"] != 5.0 || bySector["sec0"]["sum_price"] != 20.0 ||
		bySector["sec1"]["max_price"] != 9.0 {
		t.Fatalf("aggregates: %+v", bySector)
	}

	// Global aggregate.
	rows, err = e.qm.Run(tx, Q{Class: "STOCK", Aggs: []Agg{{Op: Avg, Attr: "price"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Attrs["avg_price"] != 4.5 {
		t.Fatalf("global avg: %+v", rows)
	}
}

func TestExists(t *testing.T) {
	e := newEnv(t)
	defer e.close()
	e.seedStocks(50, 10)
	tx := e.begin()
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", HashIndex); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)
	tx = e.begin()
	defer e.commit(tx)
	ok, err := e.qm.Exists(tx, "STOCK", false, Eq("price", 3))
	if err != nil || !ok {
		t.Fatalf("exists(price=3) = %v, %v", ok, err)
	}
	ok, err = e.qm.Exists(tx, "STOCK", false, Eq("price", 12345))
	if err != nil || ok {
		t.Fatalf("exists(price=12345) = %v, %v", ok, err)
	}
}

func TestDuplicateIndexRejected(t *testing.T) {
	e := newEnv(t)
	defer e.close()
	tx := e.begin()
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", HashIndex); err != nil {
		t.Fatal(err)
	}
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", HashIndex); err == nil {
		t.Fatal("duplicate index accepted")
	}
	// A different kind on the same attribute is allowed.
	if _, err := e.qm.CreateIndex(tx, "STOCK", "price", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	e.commit(tx)
	_ = event.OID(0)
}
