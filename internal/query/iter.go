package query

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/object"
	"repro/internal/txn"
)

// Row is one tuple flowing through an iterator tree. Source rows carry
// the object's identity; derived rows (aggregates) have OID 0.
type Row struct {
	OID   event.OID
	Class string
	Attrs map[string]any
}

// Iterator is the streaming Volcano-style cursor every operator exposes:
//
//	for it.Next() { use(it.Row()) }
//	if err := it.Err(); err != nil { ... }
//	it.Close()
//
// Next advances and reports whether a row is available; Row is valid
// until the next call to Next. Operators pull from their inputs one row
// at a time — only sort, group and the join build side materialize.
type Iterator interface {
	Next() bool
	Row() Row
	Err() error
	Close()
}

// Collect drains an iterator into a slice, closing it.
func Collect(it Iterator) ([]Row, error) {
	defer it.Close()
	var out []Row
	for it.Next() {
		out = append(out, it.Row())
	}
	return out, it.Err()
}

// ---- source iterators -------------------------------------------------

// oidIter loads a candidate OID list lazily, re-verifying each loaded
// object against verify (class/visibility checks happen in Load; stale
// directory candidates simply fail to load or fail verification).
type oidIter struct {
	m      *Manager
	tx     *txn.Txn
	oids   []uint64
	verify Pred // may be nil: every loaded row passes
	pos    int
	cur    Row
	err    error
}

func (s *oidIter) Next() bool {
	if s.err != nil {
		return false
	}
	for s.pos < len(s.oids) {
		oid := event.OID(s.oids[s.pos])
		s.pos++
		inst, err := s.m.reg.Load(s.tx, oid)
		if err != nil {
			if isUnknownObject(err) {
				s.m.rowsDropped.Add(1)
				continue
			}
			s.err = err
			return false
		}
		attrs := inst.Attrs()
		if s.verify != nil && !s.verify.Eval(attrs) {
			s.m.rowsDropped.Add(1)
			continue
		}
		s.cur = Row{OID: oid, Class: inst.Class.Name, Attrs: attrs}
		return true
	}
	return false
}

func (s *oidIter) Row() Row   { return s.cur }
func (s *oidIter) Err() error { return s.err }
func (s *oidIter) Close()     {}

func isUnknownObject(err error) bool {
	for e := err; e != nil; {
		if e == object.ErrUnknownObject {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// ---- relational operators ---------------------------------------------

// selectIter is σ: rows passing the predicate.
type selectIter struct {
	in   Iterator
	pred Pred
	cur  Row
}

func (s *selectIter) Next() bool {
	for s.in.Next() {
		r := s.in.Row()
		if s.pred == nil || s.pred.Eval(r.Attrs) {
			s.cur = r
			return true
		}
	}
	return false
}

func (s *selectIter) Row() Row   { return s.cur }
func (s *selectIter) Err() error { return s.in.Err() }
func (s *selectIter) Close()     { s.in.Close() }

// projectIter is π: rows narrowed to the named attributes.
type projectIter struct {
	in   Iterator
	cols []string
	cur  Row
}

func (p *projectIter) Next() bool {
	if !p.in.Next() {
		return false
	}
	r := p.in.Row()
	attrs := make(map[string]any, len(p.cols))
	for _, c := range p.cols {
		if v, ok := r.Attrs[c]; ok {
			attrs[c] = v
		}
	}
	p.cur = Row{OID: r.OID, Class: r.Class, Attrs: attrs}
	return true
}

func (p *projectIter) Row() Row   { return p.cur }
func (p *projectIter) Err() error { return p.in.Err() }
func (p *projectIter) Close()     { p.in.Close() }

// limitIter stops after n rows (n <= 0: unlimited is handled by the
// planner never inserting the operator).
type limitIter struct {
	in   Iterator
	n    int
	seen int
}

func (l *limitIter) Next() bool {
	if l.seen >= l.n {
		return false
	}
	if !l.in.Next() {
		return false
	}
	l.seen++
	return true
}

func (l *limitIter) Row() Row   { return l.in.Row() }
func (l *limitIter) Err() error { return l.in.Err() }
func (l *limitIter) Close()     { l.in.Close() }

// sortIter materializes its input and emits it ordered by attr (cross-
// type order as compareValues; ties broken by OID for determinism).
type sortIter struct {
	in     Iterator
	attr   string
	desc   bool
	rows   []Row
	loaded bool
	pos    int
	err    error
}

func (s *sortIter) Next() bool {
	if !s.loaded {
		s.loaded = true
		rows, err := Collect(s.in)
		if err != nil {
			s.err = err
			return false
		}
		sort.SliceStable(rows, func(i, j int) bool {
			rel, ok := compareValues(rows[i].Attrs[s.attr], rows[j].Attrs[s.attr])
			if !ok || rel == 0 {
				return rows[i].OID < rows[j].OID
			}
			if s.desc {
				return rel > 0
			}
			return rel < 0
		})
		s.rows = rows
	}
	if s.pos < len(s.rows) {
		s.pos++
		return true
	}
	return false
}

func (s *sortIter) Row() Row   { return s.rows[s.pos-1] }
func (s *sortIter) Err() error { return s.err }
func (s *sortIter) Close()     {}

// hashJoinIter is ⋈: equi-join, right side built into a hash table keyed
// by the canonical key encoding, left side probed streaming. Matched
// right-row attributes are merged into the output under prefix+name, so
// the two sides never collide.
type hashJoinIter struct {
	left      Iterator
	right     Iterator
	leftAttr  string
	rightAttr string
	prefix    string

	built   bool
	table   map[string][]Row
	pending []Row // right matches for the current left row
	leftRow Row
	cur     Row
	err     error
}

func (j *hashJoinIter) build() bool {
	j.built = true
	rows, err := Collect(j.right)
	if err != nil {
		j.err = err
		return false
	}
	j.table = make(map[string][]Row)
	for _, r := range rows {
		key, ok := encodeKey(r.Attrs[j.rightAttr])
		if !ok {
			continue
		}
		j.table[string(key)] = append(j.table[string(key)], r)
	}
	return true
}

func (j *hashJoinIter) Next() bool {
	if j.err != nil {
		return false
	}
	if !j.built && !j.build() {
		return false
	}
	for {
		if len(j.pending) > 0 {
			r := j.pending[0]
			j.pending = j.pending[1:]
			attrs := make(map[string]any, len(j.leftRow.Attrs)+len(r.Attrs))
			for k, v := range j.leftRow.Attrs {
				attrs[k] = v
			}
			for k, v := range r.Attrs {
				attrs[j.prefix+k] = v
			}
			j.cur = Row{OID: j.leftRow.OID, Class: j.leftRow.Class, Attrs: attrs}
			return true
		}
		if !j.left.Next() {
			return false
		}
		j.leftRow = j.left.Row()
		key, ok := encodeKey(j.leftRow.Attrs[j.leftAttr])
		if !ok {
			continue
		}
		j.pending = j.table[string(key)]
	}
}

func (j *hashJoinIter) Row() Row   { return j.cur }
func (j *hashJoinIter) Err() error { return j.err }
func (j *hashJoinIter) Close()     { j.left.Close() }

// ---- grouping / aggregation -------------------------------------------

// AggOp is an aggregate function.
type AggOp uint8

const (
	Count AggOp = iota + 1
	Sum
	Min
	Max
	Avg
)

func (op AggOp) String() string {
	switch op {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	}
	return fmt.Sprintf("agg(%d)", uint8(op))
}

// Agg is one aggregate column: Op over Attr, emitted as As (default
// "op_attr", or "count" for bare Count).
type Agg struct {
	Op   AggOp
	Attr string
	As   string
}

func (a Agg) name() string {
	if a.As != "" {
		return a.As
	}
	if a.Op == Count && a.Attr == "" {
		return "count"
	}
	return a.Op.String() + "_" + a.Attr
}

type aggState struct {
	count   uint64 // rows with a usable value (all rows, for bare Count)
	sum     float64
	numeric bool
	min     any
	max     any
	hasMM   bool
}

func (st *aggState) observe(a Agg, attrs map[string]any) {
	if a.Op == Count && a.Attr == "" {
		st.count++
		return
	}
	v, ok := attrs[a.Attr]
	if !ok || v == nil {
		return
	}
	n, ok := normalize(v)
	if !ok {
		return
	}
	st.count++
	if f, isNum := n.(float64); isNum {
		st.numeric = true
		st.sum += f
	}
	if !st.hasMM {
		st.min, st.max, st.hasMM = n, n, true
		return
	}
	if rel, ok := compareValues(n, st.min); ok && rel < 0 {
		st.min = n
	}
	if rel, ok := compareValues(n, st.max); ok && rel > 0 {
		st.max = n
	}
}

func (st *aggState) result(a Agg) any {
	switch a.Op {
	case Count:
		return float64(st.count)
	case Sum:
		return st.sum
	case Avg:
		if st.count == 0 {
			return nil
		}
		return st.sum / float64(st.count)
	case Min:
		return st.min
	case Max:
		return st.max
	}
	return nil
}

// groupIter is γ: hash aggregation over the group-by attributes. With no
// group-by columns it emits exactly one row (global aggregates).
type groupIter struct {
	in      Iterator
	groupBy []string
	aggs    []Agg

	rows   []Row
	loaded bool
	pos    int
	err    error
}

func (g *groupIter) Next() bool {
	if !g.loaded {
		g.loaded = true
		if !g.aggregate() {
			return false
		}
	}
	if g.pos < len(g.rows) {
		g.pos++
		return true
	}
	return false
}

func (g *groupIter) aggregate() bool {
	type group struct {
		keyAttrs map[string]any
		states   []aggState
	}
	groups := make(map[string]*group)
	var order []string
	in, err := Collect(g.in)
	if err != nil {
		g.err = err
		return false
	}
	for _, r := range in {
		key := make([]byte, 0, 16)
		keyAttrs := make(map[string]any, len(g.groupBy))
		for _, col := range g.groupBy {
			kb, ok := encodeKey(r.Attrs[col])
			if !ok {
				kb = []byte{0xFE} // ungroupable values form their own bucket kind
			}
			key = append(key, kb...)
			key = append(key, 0xFD) // column separator
			keyAttrs[col] = r.Attrs[col]
		}
		grp := groups[string(key)]
		if grp == nil {
			grp = &group{keyAttrs: keyAttrs, states: make([]aggState, len(g.aggs))}
			groups[string(key)] = grp
			order = append(order, string(key))
		}
		for i, a := range g.aggs {
			grp.states[i].observe(a, r.Attrs)
		}
	}
	if len(g.groupBy) == 0 && len(order) == 0 {
		// Global aggregate over an empty input still yields one row.
		groups[""] = &group{keyAttrs: map[string]any{}, states: make([]aggState, len(g.aggs))}
		order = append(order, "")
	}
	sort.Strings(order) // deterministic group order (encoded-key order)
	for _, k := range order {
		grp := groups[k]
		attrs := make(map[string]any, len(grp.keyAttrs)+len(g.aggs))
		for col, v := range grp.keyAttrs {
			attrs[col] = v
		}
		for i, a := range g.aggs {
			attrs[a.name()] = grp.states[i].result(a)
		}
		g.rows = append(g.rows, Row{Attrs: attrs})
	}
	return true
}

func (g *groupIter) Row() Row   { return g.rows[g.pos-1] }
func (g *groupIter) Err() error { return g.err }
func (g *groupIter) Close()     {}
