package query

import (
	"fmt"
	"strings"

	"repro/internal/txn"
)

// Q is a declarative query over one class extent: a predicate plus
// optional join, grouping, ordering, limit and projection. The planner
// compiles it to an iterator tree, binding equality/range conjuncts of
// Where to a secondary index when one exists — the residual predicate
// (in fact the whole Where, since index candidates are optimistic
// supersets) is re-evaluated against each loaded object.
type Q struct {
	// Class is the extent to read; Subclasses widens it to the subtree.
	// Indexes cover exact classes only, so subtree queries always scan.
	Class      string
	Subclasses bool
	// Where filters rows; nil selects the whole extent.
	Where Pred
	// Join, when set, equi-joins each row against another extent.
	Join *Join
	// GroupBy/Aggs turn the stream into grouped aggregates.
	GroupBy []string
	Aggs    []Agg
	// OrderBy sorts by one attribute (Desc reverses); ties break by OID.
	OrderBy string
	Desc    bool
	// Limit caps emitted rows when > 0.
	Limit int
	// Project narrows the attribute map to the named columns.
	Project []string
}

// Join describes the right side of an equi-join: rows of Class matching
// Where, joined where left.LeftAttr == right.RightAttr. The right row's
// attributes merge into the output under Prefix (default "Class.").
type Join struct {
	Class      string
	Subclasses bool
	Where      Pred
	LeftAttr   string
	RightAttr  string
	Prefix     string
}

// accessMode says how the planner reaches the base extent.
type accessMode uint8

const (
	accessExtent accessMode = iota
	accessProbe
	accessRange
)

// accessPlan is the bound leaf of a compiled query.
type accessPlan struct {
	mode  accessMode
	ix    *index
	eqKey []byte
	lo    []byte // [lo, hi) over the ordered directory; nil = open
	hi    []byte
	desc  string
}

// chooseAccess binds the best index to Where's conjuncts: an equality
// conjunct on a hash or ordered index beats a range; range conjuncts on
// one attribute merge into a single ordered-index scan interval.
func (m *Manager) chooseAccess(q Q) accessPlan {
	ext := accessPlan{mode: accessExtent, desc: extentDesc(q)}
	if q.Subclasses || q.Class == "" {
		return ext
	}
	var bounds []indexBound
	for _, c := range conjuncts(q.Where) {
		if b, ok := boundOf(c); ok {
			bounds = append(bounds, b)
		}
	}
	// Equality first: most selective, served by either kind.
	for _, b := range bounds {
		if !b.eq {
			continue
		}
		ix := m.lookupIndex(q.Class, b.attr, HashIndex, OrderedIndex)
		if ix == nil {
			continue
		}
		key, ok := encodeKey(b.eqVal)
		if !ok {
			continue
		}
		return accessPlan{
			mode: accessProbe, ix: ix, eqKey: key,
			desc: fmt.Sprintf("IndexProbe(%s = %v)", ix.def, b.eqVal),
		}
	}
	// Then a range interval on an ordered index, merging every range
	// conjunct on the chosen attribute.
	for _, b := range bounds {
		if !b.hasLo && !b.hasHi {
			continue
		}
		ix := m.lookupIndex(q.Class, b.attr, OrderedIndex)
		if ix == nil {
			continue
		}
		var lo, hi []byte
		var loDesc, hiDesc []string
		ok := true
		for _, o := range bounds {
			if o.attr != b.attr {
				continue
			}
			if o.hasLo {
				k, kOK := encodeKey(o.lo)
				if !kOK {
					ok = false
					break
				}
				// exclusive lower: skip past every okey extending this key
				if !o.loInc {
					k = prefixEnd(k)
				}
				if lo == nil || bytesGreater(k, lo) {
					lo = k
				}
				loDesc = append(loDesc, fmt.Sprintf("%s %v", relDesc(o.loInc, ">="), o.lo))
			}
			if o.hasHi {
				k, kOK := encodeKey(o.hi)
				if !kOK {
					ok = false
					break
				}
				// inclusive upper: include every okey extending this key
				if o.hiInc {
					k = prefixEnd(k)
				}
				if k != nil && (hi == nil || bytesGreater(hi, k)) {
					hi = k
				}
				hiDesc = append(hiDesc, fmt.Sprintf("%s %v", relDesc(o.hiInc, "<="), o.hi))
			}
		}
		if !ok || (lo == nil && hi == nil) {
			continue
		}
		return accessPlan{
			mode: accessRange, ix: ix, lo: lo, hi: hi,
			desc: fmt.Sprintf("IndexRange(%s %s)", ix.def,
				strings.Join(append(loDesc, hiDesc...), " and ")),
		}
	}
	return ext
}

func bytesGreater(a, b []byte) bool {
	return string(a) > string(b)
}

func relDesc(inclusive bool, inc string) string {
	if inclusive {
		return inc
	}
	return strings.TrimSuffix(inc, "=")
}

func extentDesc(q Q) string {
	if q.Subclasses {
		return fmt.Sprintf("ExtentScan(%s+subclasses)", q.Class)
	}
	return fmt.Sprintf("ExtentScan(%s)", q.Class)
}

// source builds the leaf iterator for q and bumps the matching counter.
// The FULL Where re-evaluates on every loaded row — index candidates are
// optimistic supersets, so pushdown only narrows, never decides.
func (m *Manager) source(tx *txn.Txn, q Q) (Iterator, string) {
	ap := m.chooseAccess(q)
	var oids []uint64
	switch ap.mode {
	case accessProbe:
		m.probes.Add(1)
		oids = ap.ix.eqCandidates(ap.eqKey)
	case accessRange:
		m.rangeScans.Add(1)
		oids = ap.ix.rangeCandidates(ap.lo, ap.hi)
	default:
		m.extentScans.Add(1)
		ext := m.reg.ExtentOIDs(q.Class, q.Subclasses)
		oids = make([]uint64, len(ext))
		for i, oid := range ext {
			oids[i] = uint64(oid)
		}
	}
	return &oidIter{m: m, tx: tx, oids: oids, verify: q.Where}, ap.desc
}

// Plan compiles q into an iterator tree over tx's view of the store
// (snapshot when armed, 2PL reads otherwise).
func (m *Manager) Plan(tx *txn.Txn, q Q) (Iterator, error) {
	if q.Class == "" {
		return nil, fmt.Errorf("query: class required")
	}
	if _, err := m.reg.Class(q.Class); err != nil {
		return nil, err
	}
	it, _ := m.source(tx, q)
	if q.Join != nil {
		j := *q.Join
		if j.LeftAttr == "" || j.RightAttr == "" {
			return nil, fmt.Errorf("query: join requires LeftAttr and RightAttr")
		}
		right, err := m.Plan(tx, Q{Class: j.Class, Subclasses: j.Subclasses, Where: j.Where})
		if err != nil {
			return nil, err
		}
		prefix := j.Prefix
		if prefix == "" {
			prefix = j.Class + "."
		}
		it = &hashJoinIter{left: it, right: right,
			leftAttr: j.LeftAttr, rightAttr: j.RightAttr, prefix: prefix}
	}
	if len(q.GroupBy) > 0 || len(q.Aggs) > 0 {
		it = &groupIter{in: it, groupBy: q.GroupBy, aggs: q.Aggs}
	}
	if q.OrderBy != "" {
		it = &sortIter{in: it, attr: q.OrderBy, desc: q.Desc}
	}
	if q.Limit > 0 {
		it = &limitIter{in: it, n: q.Limit}
	}
	if len(q.Project) > 0 {
		it = &projectIter{in: it, cols: q.Project}
	}
	return it, nil
}

// Run compiles and drains q.
func (m *Manager) Run(tx *txn.Txn, q Q) ([]Row, error) {
	it, err := m.Plan(tx, q)
	if err != nil {
		return nil, err
	}
	return Collect(it)
}

// Exists reports whether any object of class satisfies pred — the
// evaluation primitive behind indexed rule conditions. It stops at the
// first verified row.
func (m *Manager) Exists(tx *txn.Txn, class string, subclasses bool, pred Pred) (bool, error) {
	it, err := m.Plan(tx, Q{Class: class, Subclasses: subclasses, Where: pred, Limit: 1})
	if err != nil {
		return false, err
	}
	defer it.Close()
	ok := it.Next()
	return ok, it.Err()
}

// Explain renders the plan the compiler would pick, without running it.
func (m *Manager) Explain(q Q) string {
	ap := m.chooseAccess(q)
	parts := []string{ap.desc}
	if q.Where != nil {
		parts = append(parts, fmt.Sprintf("Verify(%s)", q.Where))
	}
	if q.Join != nil {
		prefix := q.Join.Prefix
		if prefix == "" {
			prefix = q.Join.Class + "."
		}
		parts = append(parts, fmt.Sprintf("HashJoin(%s = %s%s)",
			q.Join.LeftAttr, prefix, q.Join.RightAttr))
	}
	if len(q.GroupBy) > 0 || len(q.Aggs) > 0 {
		aggs := make([]string, len(q.Aggs))
		for i, a := range q.Aggs {
			aggs[i] = a.name()
		}
		parts = append(parts, fmt.Sprintf("Group(by=%v aggs=%v)", q.GroupBy, aggs))
	}
	if q.OrderBy != "" {
		dir := "asc"
		if q.Desc {
			dir = "desc"
		}
		parts = append(parts, fmt.Sprintf("Sort(%s %s)", q.OrderBy, dir))
	}
	if q.Limit > 0 {
		parts = append(parts, fmt.Sprintf("Limit(%d)", q.Limit))
	}
	if len(q.Project) > 0 {
		parts = append(parts, fmt.Sprintf("Project(%v)", q.Project))
	}
	return strings.Join(parts, " -> ")
}
