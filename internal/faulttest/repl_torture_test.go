package faulttest

import (
	"os"
	"strconv"
	"testing"
)

// TestReplTorture runs seeded leader/follower crash schedules. Default is a
// smoke-sized sweep; CI and `make torture` raise it via
// SENTINEL_REPL_TORTURE_ITERS. Any failure names its seed — rerunning that
// seed reproduces the schedule exactly.
func TestReplTorture(t *testing.T) {
	iters := 12
	if s := os.Getenv("SENTINEL_REPL_TORTURE_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad SENTINEL_REPL_TORTURE_ITERS %q", s)
		}
		iters = n
	} else if testing.Short() {
		iters = 4
	}
	const base = int64(0x5EED4EA1)
	for i := 0; i < iters; i++ {
		seed := base + int64(i)*7919
		it, err := RunRepl(seed, t.TempDir())
		if err != nil {
			t.Fatalf("seed %d scenario %s (killed %s, crashed %v): %v",
				seed, it.Scenario, it.Killed, it.Crashed, err)
		}
		if testing.Verbose() {
			t.Logf("seed %d: %s killed=%s crashed=%v ok", seed, it.Scenario, it.Killed, it.Crashed)
		}
	}
}
