// Package faulttest is the crash-torture harness: it drives randomized but
// fully seeded workloads against the storage manager while the fault layer
// (internal/faults) injects kill-points, then reopens the store — running
// recovery — and verifies the durability invariants the rest of the system
// is built on:
//
//  1. every value committed before the crash is present after recovery,
//  2. no value of an aborted or in-flight transaction survives,
//  3. a transaction whose Commit was interrupted is all-or-nothing —
//     either every one of its values recovered or none did.
//
// A "crash" is the faults.Crash panic: the workload recovers it, abandons
// the store without closing it (the buffered WAL tail is lost, exactly as a
// killed process loses it), and reopens from the on-disk files. Everything
// is derived from one seed, so any failing iteration reproduces exactly
// from the seed the test logs.
package faulttest

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/faults"
	"repro/internal/storage"
)

// txStatus tracks how far one workload transaction got.
type txStatus int

const (
	txInFlight txStatus = iota
	txCommitting
	txCommitted
	txAborting
	txAborted
)

// txRecord is the harness's bookkeeping for one transaction: the values it
// finally owes the database (post-update, post-subtransaction) and where in
// its lifecycle the crash (if any) caught it.
type txRecord struct {
	status txStatus
	values []string // values that should exist iff the txn commits
	dead   []string // values it superseded (updates) or rolled back (sub-aborts)
}

// Expectation is what an iteration's workload promises the database after
// recovery.
type Expectation struct {
	Present       map[string]bool // must be in the post-recovery scan
	Absent        map[string]bool // must NOT be in the scan
	Indeterminate [][]string      // per interrupted commit: all or none
}

// Iteration is one seeded torture run.
type Iteration struct {
	Seed    int64
	Dir     string
	Crashed bool   // a kill-point fired
	Killed  string // which point (for the log)
}

// killPoint is one schedulable crash site with the hit-count range the
// workload plausibly reaches.
type killPoint struct {
	point    faults.Point
	maxHit   int
	syncOnly bool
}

var killPoints = []killPoint{
	{point: faults.StoreCommit, maxHit: 8},
	// The group-commit flusher: the crash fires on the flusher goroutine
	// between batch collection and the force, is re-raised on each waiting
	// committer, and the batch's commit records may or may not have hit
	// disk — every transaction in it must recover all-or-nothing.
	{point: faults.StoreGroupFlush, maxHit: 12},
	{point: faults.StoreAbortUndo, maxHit: 8},
	{point: faults.WALAppend, maxHit: 48},
	{point: faults.WALFlush, maxHit: 12},
	{point: faults.WALFsync, maxHit: 12, syncOnly: true},
	{point: faults.DiskWrite, maxHit: 6},
	{point: faults.DiskTruncate, maxHit: 4},
}

// Run executes one seeded iteration in dir: run the workload under a
// randomly scheduled kill-point, reopen, verify. It returns the iteration
// record and the first invariant violation (nil when all held).
func Run(seed int64, dir string) (*Iteration, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	it := &Iteration{Seed: seed, Dir: dir}

	syncWAL := rng.Intn(3) == 0
	kp := killPoints[rng.Intn(len(killPoints))]
	for kp.syncOnly && !syncWAL {
		kp = killPoints[rng.Intn(len(killPoints))]
	}
	on := uint64(1 + rng.Intn(kp.maxHit))
	it.Killed = fmt.Sprintf("%s#%d", kp.point, on)

	st, err := storage.Open(storage.Options{Dir: dir, PoolSize: 8, SyncWAL: syncWAL})
	if err != nil {
		return it, fmt.Errorf("open: %w", err)
	}

	faults.Arm(faults.NewInjector(seed, faults.Trigger{
		Point: kp.point, On: on, Limit: 1, Fault: faults.Fault{Crash: true},
	}))
	exp, crashed := runWorkload(rng, seed, st)
	faults.Disarm()
	it.Crashed = crashed

	if !crashed {
		// The schedule never fired; close cleanly — verification then also
		// covers the plain shutdown/reopen path.
		if err := st.Close(); err != nil {
			return it, fmt.Errorf("close: %w", err)
		}
	}
	// Crashed stores are abandoned, not closed: their buffered WAL tail is
	// lost with the "process".

	re, err := storage.Open(storage.Options{Dir: dir, PoolSize: 8, SyncWAL: syncWAL})
	if err != nil {
		return it, fmt.Errorf("reopen/recovery: %w", err)
	}
	defer re.Close()
	if err := Verify(re, exp); err != nil {
		return it, err
	}
	// The recovered store must be fully usable, not just readable.
	if err := smoke(re, seed); err != nil {
		return it, fmt.Errorf("post-recovery smoke: %w", err)
	}
	return it, nil
}

// runWorkload drives a seeded mix of transactions — inserts, self-updates,
// committed and aborted subtransactions, voluntary aborts, a checkpoint —
// and records what each one owes the database. It returns the accumulated
// expectation and whether an injected crash cut the run short.
func runWorkload(rng *rand.Rand, seed int64, st *storage.Store) (exp *Expectation, crashed bool) {
	exp = &Expectation{Present: map[string]bool{}, Absent: map[string]bool{}}
	var txs []*txRecord

	// On a crash panic, every transaction's fate is sealed by where it was:
	// committed stays present, committing becomes indeterminate, everything
	// else is a loser.
	defer func() {
		if r := recover(); r != nil {
			if _, ok := faults.AsCrash(r); !ok {
				panic(r)
			}
			crashed = true
		}
		for _, tx := range txs {
			switch tx.status {
			case txCommitted:
				for _, v := range tx.values {
					exp.Present[v] = true
				}
			case txCommitting:
				exp.Indeterminate = append(exp.Indeterminate, tx.values)
			default: // in-flight, aborting, aborted: all losers
				for _, v := range tx.values {
					exp.Absent[v] = true
				}
			}
			for _, v := range tx.dead {
				exp.Absent[v] = true
			}
		}
	}()

	nTxns := 6 + rng.Intn(7)
	for i := 0; i < nTxns; i++ {
		tx := &txRecord{}
		txs = append(txs, tx)
		id, err := st.Begin()
		if err != nil {
			return
		}
		nOps := 1 + rng.Intn(4)
		var rids []storage.RID
		for k := 0; k < nOps; k++ {
			v := fmt.Sprintf("v%d-%d-%d", seed, i, k)
			rid, err := st.Insert(id, []byte(v))
			if err != nil {
				return
			}
			tx.values = append(tx.values, v)
			rids = append(rids, rid)
		}
		if len(rids) > 0 && rng.Intn(3) == 0 {
			// Update one of our own records: the old value dies either way.
			j := rng.Intn(len(rids))
			old := tx.values[j]
			v := old + "+u"
			if _, err := st.Update(id, rids[j], []byte(v)); err != nil {
				return
			}
			tx.values[j] = v
			tx.dead = append(tx.dead, old)
		}
		if rng.Intn(3) == 0 {
			// Subtransaction: its value follows the parent iff it commits,
			// dies unconditionally if it aborts.
			sub, err := st.BeginSub(id)
			if err != nil {
				return
			}
			v := fmt.Sprintf("v%d-%d-sub", seed, i)
			if _, err := st.Insert(sub, []byte(v)); err != nil {
				return
			}
			if rng.Intn(2) == 0 {
				if err := st.Commit(sub); err != nil {
					return
				}
				tx.values = append(tx.values, v)
			} else {
				if err := st.Abort(sub); err != nil {
					return
				}
				tx.dead = append(tx.dead, v)
			}
		}
		if rng.Intn(10) == 0 {
			if err := st.Checkpoint(); err != nil {
				return
			}
		}
		if rng.Intn(10) < 7 {
			tx.status = txCommitting
			if err := st.Commit(id); err != nil {
				return // indeterminate: the commit record's fate is unknown
			}
			tx.status = txCommitted
		} else {
			tx.status = txAborting
			if err := st.Abort(id); err != nil {
				return
			}
			tx.status = txAborted
		}
	}
	return
}

// Verify full-scans the recovered store and checks the expectation: every
// committed value present, every loser value absent, every interrupted
// commit all-or-nothing. The scan runs twice — once through the snapshot
// path (ForEachRecord) and once unfiltered (ForEachRecordLatest) — and the
// two must agree exactly: right after recovery every surviving record is
// frozen, so no version chain may make the MVCC view diverge from the raw
// page state.
func Verify(st *storage.Store, exp *Expectation) error {
	found := map[string]bool{}
	snap := map[storage.RID]string{}
	err := st.ForEachRecord(func(rid storage.RID, data []byte) error {
		found[string(data)] = true
		snap[rid] = string(data)
		return nil
	})
	if err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	latest := map[storage.RID]string{}
	if err := st.ForEachRecordLatest(func(rid storage.RID, data []byte) error {
		latest[rid] = string(data)
		return nil
	}); err != nil {
		return fmt.Errorf("latest scan: %w", err)
	}
	if len(snap) != len(latest) {
		return fmt.Errorf("invariant: snapshot scan sees %d records, latest scan %d", len(snap), len(latest))
	}
	for rid, v := range latest {
		if sv, ok := snap[rid]; !ok || sv != v {
			return fmt.Errorf("invariant: scan divergence at %v after recovery: snapshot %q latest %q", rid, sv, v)
		}
	}
	for v := range exp.Present {
		if !found[v] {
			return fmt.Errorf("invariant: committed value %q missing after recovery", v)
		}
	}
	for v := range exp.Absent {
		if found[v] {
			return fmt.Errorf("invariant: aborted/in-flight value %q present after recovery", v)
		}
	}
	for _, group := range exp.Indeterminate {
		n := 0
		for _, v := range group {
			if found[v] {
				n++
			}
		}
		if n != 0 && n != len(group) {
			return fmt.Errorf("invariant: interrupted commit recovered partially (%d of %d values)", n, len(group))
		}
	}
	if n := len(st.ActiveTxns()); n != 0 {
		return fmt.Errorf("invariant: %d transactions still active after recovery", n)
	}
	return nil
}

// smoke proves the recovered store accepts new work: insert, commit, read
// back.
func smoke(st *storage.Store, seed int64) error {
	id, err := st.Begin()
	if err != nil {
		return err
	}
	v := fmt.Sprintf("smoke-%d", seed)
	rid, err := st.Insert(id, []byte(v))
	if err != nil {
		return err
	}
	if err := st.Commit(id); err != nil {
		return err
	}
	got, err := st.Read(rid)
	if err != nil {
		return err
	}
	if string(got) != v {
		return fmt.Errorf("smoke: read %q, want %q", got, v)
	}
	return nil
}

// SeedLoserDir builds a database directory containing a durable,
// uncommitted transaction — forward records checkpointed to disk, no
// commit — so that the next open MUST run an undo pass. The sabotage test
// uses it to prove the harness catches a recovery that skips undo.
func SeedLoserDir(dir string) (*Expectation, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st, err := storage.Open(storage.Options{Dir: dir, PoolSize: 8})
	if err != nil {
		return nil, err
	}
	exp := &Expectation{Present: map[string]bool{}, Absent: map[string]bool{}}
	id, err := st.Begin()
	if err != nil {
		return nil, err
	}
	for k := 0; k < 3; k++ {
		v := fmt.Sprintf("loser-%d", k)
		if _, err := st.Insert(id, []byte(v)); err != nil {
			return nil, err
		}
		exp.Absent[v] = true
	}
	// Checkpoint forces the forward records (and dirty pages) to disk while
	// the transaction is still open; abandoning the store now simulates a
	// crash that left a durable loser.
	if err := st.Checkpoint(); err != nil {
		return nil, err
	}
	return exp, nil
}
