package faulttest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/query"
)

// TestQueryTorture runs seeded kill-point schedules through the full
// object + secondary-index stack and, after every recovery, checks both
// the durability expectations and the index≡scan oracle: equality probes
// and range scans must answer exactly as a full extent walk, served from
// the index directories.
func TestQueryTorture(t *testing.T) {
	iters := tortureIters(t)
	seed := tortureSeed(t)
	t.Logf("query torture: %d iterations, base seed %d (rerun with SENTINEL_TORTURE_SEED=%d)", iters, seed, seed)

	base := t.TempDir()
	crashes := 0
	byPoint := map[string]int{}
	for i := 0; i < iters; i++ {
		s := seed + int64(i)
		dir := filepath.Join(base, fmt.Sprintf("q%04d", i))
		it, err := RunQuery(s, dir)
		if err != nil {
			t.Fatalf("iteration %d (seed %d, kill %s): %v", i, s, it.Killed, err)
		}
		if it.Crashed {
			crashes++
			byPoint[strings.SplitN(it.Killed, "#", 2)[0]]++
		}
		os.RemoveAll(dir)
	}
	t.Logf("query torture: %d/%d iterations crashed (per point: %v)", crashes, iters, byPoint)
	if crashes == 0 {
		t.Fatalf("no kill-point ever fired across %d iterations — schedules are miscalibrated", iters)
	}
}

// TestQueryIndexRaceStress drives concurrent committers (price re-keys —
// index delete+insert pairs) against concurrent snapshot readers (probes
// and range scans) and finishes with the index≡scan oracle. Its value is
// under -race: the index directories are shared mutable state touched by
// writers at commit/abort time and readers at probe time.
func TestQueryIndexRaceStress(t *testing.T) {
	stk, err := openQueryStack(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer stk.st.Close()

	const nObjs, nWriters, nReaders, rounds = 64, 4, 4, 40

	tx, err := stk.tm.Begin()
	if err != nil {
		t.Fatal(err)
	}
	oids := make([]event.OID, nObjs)
	for i := 0; i < nObjs; i++ {
		inst, err := stk.reg.New(tx, "STOCK", map[string]any{
			"sym": fmt.Sprintf("R%03d", i), "price": float64(i % 10),
		})
		if err != nil {
			t.Fatal(err)
		}
		oids[i] = inst.OID
	}
	if _, err := stk.qm.CreateIndex(tx, "STOCK", "sym", query.HashIndex); err != nil {
		t.Fatal(err)
	}
	if _, err := stk.qm.CreateIndex(tx, "STOCK", "price", query.OrderedIndex); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, nWriters+nReaders)

	// Writers: each owns a disjoint slice of the extent and re-keys
	// prices, sometimes aborting so the abort-undo path races the readers
	// too. Load takes the catalog lock shared and Persist upgrades it to
	// exclusive, so concurrent writers can be picked as deadlock victims —
	// that is ordinary 2PL; the writer aborts and moves on like any
	// application would.
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tx, err := stk.tm.Begin()
				if err != nil {
					errc <- err
					return
				}
				conflicted := false
				for i := w; i < nObjs; i += nWriters {
					if i%3 != r%3 {
						continue
					}
					inst, err := stk.reg.Load(tx, oids[i])
					if err == nil {
						inst.Attrs()["price"] = float64((i + r) % 10)
						err = stk.reg.Persist(tx, inst)
					}
					if err != nil {
						if errIsLockConflict(err) {
							conflicted = true
							break
						}
						errc <- fmt.Errorf("writer %d: %w", w, err)
						tx.Abort()
						return
					}
				}
				if conflicted || r%5 == 4 {
					if err := tx.Abort(); err != nil {
						errc <- err
						return
					}
				} else if err := tx.Commit(); err != nil {
					errc <- fmt.Errorf("writer %d commit: %w", w, err)
					return
				}
			}
		}(w)
	}

	// Readers: snapshot transactions alternating hash probes and ordered
	// range scans. Every row returned must satisfy the predicate it was
	// asked for — the re-verify step is what makes racing stale postings
	// safe, so it is exactly what we assert.
	for rd := 0; rd < nReaders; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for r := 0; r < rounds*2; r++ {
				stx, err := stk.tm.BeginSnapshot()
				if err != nil {
					errc <- err
					return
				}
				var rows []query.Row
				var qerr error
				if r%2 == 0 {
					sym := fmt.Sprintf("R%03d", (rd*7+r)%nObjs)
					rows, qerr = stk.qm.Run(stx, query.Q{Class: "STOCK", Where: query.Eq("sym", sym)})
					if qerr == nil && len(rows) != 1 {
						qerr = fmt.Errorf("probe %s: %d rows", sym, len(rows))
					}
				} else {
					lo, hi := float64(r%5), float64(r%5+3)
					rows, qerr = stk.qm.Run(stx, query.Q{Class: "STOCK", Where: query.Between("price", lo, hi)})
					for _, row := range rows {
						if p, _ := row.Attrs["price"].(float64); qerr == nil && (p < lo || p > hi) {
							qerr = fmt.Errorf("range [%v,%v] returned price %v", lo, hi, p)
						}
					}
				}
				stx.Commit()
				if qerr != nil && !errIsLockConflict(qerr) {
					errc <- fmt.Errorf("reader %d: %w", rd, qerr)
					return
				}
			}
		}(rd)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesced: the directories must agree with the extent exactly.
	tx, err = stk.tm.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	for i := 0; i < nObjs; i++ {
		inst, err := stk.reg.Load(tx, oids[i])
		if err != nil {
			t.Fatal(err)
		}
		price := inst.Attrs()["price"].(float64)
		rows, err := stk.qm.Run(tx, query.Q{Class: "STOCK", Where: query.Eq("price", price)})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range rows {
			if r.OID == oids[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("object %d (price %v) not returned by its own price probe", oids[i], price)
		}
	}
	probes, ranges, _, _, _ := stk.qm.Stats()
	if probes == 0 || ranges == 0 {
		t.Fatalf("stress never exercised the indexes (probes=%d ranges=%d)", probes, ranges)
	}
}
