package faulttest

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/repl"
	"repro/internal/storage"
)

// Replication torture: a leader and a follower store wired over real TCP,
// the seeded workload running on the leader while the follower applies the
// shipped WAL, and a seeded kill striking one side:
//
//   - leader killed, leader restarts: the follower reconnects to the
//     recovered leader and both must converge to identical record states;
//   - leader killed, follower promoted: the promoted store must satisfy
//     the workload's expectation (committed present, losers absent,
//     interrupted commits all-or-nothing) and accept new writes;
//   - follower killed mid-apply: its store is reopened (running follower
//     recovery), follows again from its own offset, and must converge;
//   - nobody killed: plain convergence within the lag bound.
//
// Divergence checking is record-for-record: after convergence the leader
// and follower scans (snapshot and latest alike) must be identical.

// Replication scenario classes, chosen by seed.
const (
	scenConverge = iota
	scenLeaderRestart
	scenLeaderPromote
	scenFollowerKill
	scenCount
)

var scenNames = map[int]string{
	scenConverge:      "converge",
	scenLeaderRestart: "leader-restart",
	scenLeaderPromote: "leader-promote",
	scenFollowerKill:  "follower-kill",
}

// leaderKillPoints are the crash sites a leader kill may strike. Only
// points the follower's ingest/flush paths never pass through are eligible
// — both stores share the process-global fault injector.
var leaderKillPoints = []killPoint{
	{point: faults.StoreCommit, maxHit: 8},
	{point: faults.StoreGroupFlush, maxHit: 12},
	{point: faults.StoreAbortUndo, maxHit: 8},
	{point: faults.WALAppend, maxHit: 48},
}

// ReplIteration is one seeded replication torture run.
type ReplIteration struct {
	Seed     int64
	Scenario string
	Killed   string // armed kill point (for the log)
	Crashed  bool   // the kill actually fired
}

// replLagTimeout bounds how long a follower may need to converge — the
// harness's bounded-replica-lag assertion. Generous because it covers
// reconnect backoff after a leader restart.
const replLagTimeout = 30 * time.Second

// addrBox hands the (changing) leader address to the follower's dial loop.
type addrBox struct {
	mu sync.Mutex
	s  string
}

func (b *addrBox) set(s string) { b.mu.Lock(); b.s = s; b.mu.Unlock() }
func (b *addrBox) get() string  { b.mu.Lock(); defer b.mu.Unlock(); return b.s }

// RunRepl executes one seeded replication iteration in dir. It returns the
// iteration record and the first invariant violation (nil when all held).
func RunRepl(seed int64, dir string) (*ReplIteration, error) {
	for _, sub := range []string{"leader", "follower"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	it := &ReplIteration{Seed: seed}

	scen := rng.Intn(scenCount)
	it.Scenario = scenNames[scen]
	syncWAL := rng.Intn(3) == 0
	// Small segments exercise rolls, sealed-segment shipping and the
	// checkpoint archive path. Not in the follower-kill class: with its
	// session dead, a workload checkpoint may prune below the crashed
	// follower's resume offset, turning the reconnect into a (correct but
	// terminal) resync refusal.
	segBytes := int64(0)
	if scen != scenFollowerKill && rng.Intn(2) == 0 {
		segBytes = 4 << 10
	}
	leaderOpts := storage.Options{
		Dir: filepath.Join(dir, "leader"), PoolSize: 8,
		SyncWAL: syncWAL, WALSegBytes: segBytes,
	}
	followerOpts := storage.Options{
		Dir: filepath.Join(dir, "follower"), PoolSize: 8,
		SyncWAL: syncWAL, WALSegBytes: segBytes, Follower: true,
	}

	ld, err := storage.Open(leaderOpts)
	if err != nil {
		return it, fmt.Errorf("open leader: %w", err)
	}
	srv, err := repl.NewServer(ld, "127.0.0.1:0")
	if err != nil {
		return it, fmt.Errorf("repl server: %w", err)
	}
	var addr addrBox
	addr.set(srv.Addr())
	fst, err := storage.Open(followerOpts)
	if err != nil {
		return it, fmt.Errorf("open follower: %w", err)
	}
	fol, err := repl.StartFollower(fst, addr.get)
	if err != nil {
		return it, fmt.Errorf("start follower: %w", err)
	}
	// Let the session establish before writing: a connected session's ack
	// floor is what keeps workload checkpoints from pruning the log bytes
	// the follower has not pulled yet. (A follower bootstrapped after
	// pruning legitimately needs a full resync — not this harness's topic.)
	for waited := 0; !fol.Connected(); waited++ {
		if waited > 5000 {
			return it, fmt.Errorf("follower never connected")
		}
		time.Sleep(time.Millisecond)
	}

	switch scen {
	case scenLeaderRestart, scenLeaderPromote:
		kp := leaderKillPoints[rng.Intn(len(leaderKillPoints))]
		on := uint64(1 + rng.Intn(kp.maxHit))
		it.Killed = fmt.Sprintf("%s#%d", kp.point, on)
		faults.Arm(faults.NewInjector(seed, faults.Trigger{
			Point: kp.point, On: on, Limit: 1, Fault: faults.Fault{Crash: true},
		}))
	case scenFollowerKill:
		on := uint64(1 + rng.Intn(60))
		it.Killed = fmt.Sprintf("%s#%d", faults.ReplApply, on)
		faults.Arm(faults.NewInjector(seed, faults.Trigger{
			Point: faults.ReplApply, On: on, Limit: 1, Fault: faults.Fault{Crash: true},
		}))
	}

	exp, crashed := runWorkload(rng, seed, ld)
	if scen == scenFollowerKill {
		// The kill strikes the follower's apply loop, concurrent with (or
		// after) the workload: leave the injector armed until the stream
		// either hits it or drains.
		deadline := time.Now().Add(replLagTimeout)
		for fol.Err() == nil {
			_ = ld.FlushLog()
			if fst.ReplApplied() >= ld.LogEnd() {
				break
			}
			if time.Now().After(deadline) {
				faults.Disarm()
				return it, fmt.Errorf("follower neither crashed nor converged (applied %d, leader %d)",
					fst.ReplApplied(), ld.LogEnd())
			}
			time.Sleep(time.Millisecond)
		}
		crashed = fol.Err() != nil
	}
	faults.Disarm()
	it.Crashed = crashed

	if !crashed {
		// The schedule never fired (or the class injects nothing): plain
		// convergence under the lag bound, then record-level equality.
		if err := waitShipped(ld, fst, fol, replLagTimeout); err != nil {
			return it, err
		}
		if err := Verify(ld, exp); err != nil {
			return it, fmt.Errorf("leader: %w", err)
		}
		if err := Verify(fst, exp); err != nil {
			return it, fmt.Errorf("follower: %w", err)
		}
		if err := verifyMirror(ld, fst); err != nil {
			return it, err
		}
		fol.Stop()
		srv.Close()
		if err := ld.Close(); err != nil {
			return it, fmt.Errorf("close leader: %w", err)
		}
		if err := fst.Close(); err != nil {
			return it, fmt.Errorf("close follower: %w", err)
		}
		return it, nil
	}

	switch scen {
	case scenLeaderRestart:
		// The dead leader restarts: stop shipping from the crashed store,
		// reopen its directory (recovery resolves every in-flight
		// transaction and republishes lost commit timestamps), and serve
		// again on a fresh port. The follower is still dialing; it must
		// resume from its own offset and converge on the recovered history.
		srv.Close()
		ld2, err := storage.Open(leaderOpts)
		if err != nil {
			return it, fmt.Errorf("leader recovery: %w", err)
		}
		srv2, err := repl.NewServer(ld2, "127.0.0.1:0")
		if err != nil {
			return it, fmt.Errorf("repl server (restarted): %w", err)
		}
		addr.set(srv2.Addr())
		if err := waitShipped(ld2, fst, fol, replLagTimeout); err != nil {
			return it, err
		}
		if err := Verify(ld2, exp); err != nil {
			return it, fmt.Errorf("recovered leader: %w", err)
		}
		if err := Verify(fst, exp); err != nil {
			return it, fmt.Errorf("follower of recovered leader: %w", err)
		}
		if err := verifyMirror(ld2, fst); err != nil {
			return it, err
		}
		fol.Stop()
		srv2.Close()
		if err := ld2.Close(); err != nil {
			return it, fmt.Errorf("close recovered leader: %w", err)
		}
		if err := fst.Close(); err != nil {
			return it, fmt.Errorf("close follower: %w", err)
		}

	case scenLeaderPromote:
		// The dead leader stays dead: the follower drains whatever reached
		// the leader's disk, is promoted, and must satisfy the workload's
		// expectation on its own — then take writes as the new leader.
		if err := waitShipped(ld, fst, fol, replLagTimeout); err != nil {
			return it, err
		}
		srv.Close()
		if _, err := fol.Promote(); err != nil {
			return it, fmt.Errorf("promote: %w", err)
		}
		if err := Verify(fst, exp); err != nil {
			return it, fmt.Errorf("promoted follower: %w", err)
		}
		if err := smoke(fst, seed); err != nil {
			return it, fmt.Errorf("post-promotion smoke: %w", err)
		}
		// The crashed leader store is abandoned, never closed.
		if err := fst.Close(); err != nil {
			return it, fmt.Errorf("close promoted follower: %w", err)
		}

	case scenFollowerKill:
		// The follower's "process" died mid-apply: its store is abandoned
		// (unflushed ingest tail lost, apply mutex still held) and its
		// directory reopened — running follower recovery — then it follows
		// again from its own durable offset and must converge.
		fol.Stop()
		fst2, err := storage.Open(followerOpts)
		if err != nil {
			return it, fmt.Errorf("follower recovery: %w", err)
		}
		fol2, err := repl.StartFollower(fst2, addr.get)
		if err != nil {
			return it, fmt.Errorf("restart follower: %w", err)
		}
		if err := waitShipped(ld, fst2, fol2, replLagTimeout); err != nil {
			return it, err
		}
		if err := Verify(ld, exp); err != nil {
			return it, fmt.Errorf("leader: %w", err)
		}
		if err := Verify(fst2, exp); err != nil {
			return it, fmt.Errorf("recovered follower: %w", err)
		}
		if err := verifyMirror(ld, fst2); err != nil {
			return it, err
		}
		fol2.Stop()
		srv.Close()
		if err := ld.Close(); err != nil {
			return it, fmt.Errorf("close leader: %w", err)
		}
		if err := fst2.Close(); err != nil {
			return it, fmt.Errorf("close recovered follower: %w", err)
		}
	}
	return it, nil
}

// waitShipped blocks until the follower has fully applied everything up to
// the leader's flushed end — the bounded-replica-lag assertion. It waits on
// the applied watermark, not the log end: ingest advances the log end before
// the batch's records have been applied, and verifying in that window would
// race the apply loop. The flush attempt is best-effort: a crashed (sealed)
// leader WAL keeps its flushed end, which is then exactly what the follower
// can ever receive.
func waitShipped(ld, fst *storage.Store, fol *repl.Follower, timeout time.Duration) error {
	_ = ld.FlushLog()
	target := ld.LogFlushed()
	deadline := time.Now().Add(timeout)
	for fst.ReplApplied() < target {
		if err := fol.Err(); err != nil {
			return fmt.Errorf("follower failed at lsn %d: %w", fst.ReplApplied(), err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica lag unbounded: follower applied %d, leader flushed %d",
				fst.ReplApplied(), target)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// verifyMirror checks record-for-record equality of the two stores, through
// both the snapshot scan and the unfiltered latest scan.
func verifyMirror(ld, fst *storage.Store) error {
	type scan func(*storage.Store) (map[storage.RID]string, error)
	snapshot := func(st *storage.Store) (map[storage.RID]string, error) {
		m := map[storage.RID]string{}
		err := st.ForEachRecord(func(rid storage.RID, data []byte) error {
			m[rid] = string(data)
			return nil
		})
		return m, err
	}
	latest := func(st *storage.Store) (map[storage.RID]string, error) {
		m := map[storage.RID]string{}
		err := st.ForEachRecordLatest(func(rid storage.RID, data []byte) error {
			m[rid] = string(data)
			return nil
		})
		return m, err
	}
	for name, sc := range map[string]scan{"snapshot": snapshot, "latest": latest} {
		lm, err := sc(ld)
		if err != nil {
			return fmt.Errorf("leader %s scan: %w", name, err)
		}
		fm, err := sc(fst)
		if err != nil {
			return fmt.Errorf("follower %s scan: %w", name, err)
		}
		if len(lm) != len(fm) {
			return fmt.Errorf("divergence: leader %s scan has %d records, follower %d",
				name, len(lm), len(fm))
		}
		for rid, v := range lm {
			if fv, ok := fm[rid]; !ok || fv != v {
				return fmt.Errorf("divergence at %v (%s scan): leader %q, follower %q",
					rid, name, v, fv)
			}
		}
	}
	return nil
}
