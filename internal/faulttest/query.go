// Query-layer crash torture: the same seeded kill-point discipline as
// Run, but driven through the full object + secondary-index stack instead
// of raw storage records. Every iteration ends with the index≡scan oracle:
// after recovery, each surviving index is probed for every key the extent
// scan can see, and the two answers must agree exactly. Index entries are
// ordinary heap records in the same transactions as the objects they
// describe, so this is the test that the "indexes recover for free" claim
// actually holds under arbitrary crash points — including mid-abort, where
// in-memory directory undo and on-disk CLR undo must land in the same
// place.

package faulttest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/event"
	"repro/internal/faults"
	"repro/internal/lockmgr"
	"repro/internal/object"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/txn"
)

// queryStack is one full open of the object+index layers over a store, the
// same wiring the facade performs.
type queryStack struct {
	st  *storage.Store
	tm  *txn.Manager
	reg *object.Registry
	qm  *query.Manager
}

func openQueryStack(dir string, syncWAL bool) (*queryStack, error) {
	st, err := storage.Open(storage.Options{Dir: dir, PoolSize: 32, SyncWAL: syncWAL})
	if err != nil {
		return nil, fmt.Errorf("open: %w", err)
	}
	tm := txn.NewManager(st, lockmgr.New())
	reg := object.NewRegistry(nil, st)
	qm := query.NewManager(st, reg)
	reg.SetIndexHook(qm)
	tx, err := tm.Begin()
	if err != nil {
		st.Close()
		return nil, err
	}
	if err := reg.InitCatalog(tx); err != nil {
		st.Close()
		return nil, fmt.Errorf("init catalog: %w", err)
	}
	if err := tx.Commit(); err != nil {
		st.Close()
		return nil, err
	}
	if _, err := reg.DefineClass("STOCK", "", false); err != nil {
		st.Close()
		return nil, err
	}
	if err := qm.Bootstrap(); err != nil {
		st.Close()
		return nil, fmt.Errorf("index bootstrap: %w", err)
	}
	return &queryStack{st: st, tm: tm, reg: reg, qm: qm}, nil
}

// objRecord mirrors txRecord for object workloads: the sym→price pairs a
// transaction owes the extent iff it commits, and the syms it killed
// unconditionally (same-transaction deletes, aborted subtransactions).
type objRecord struct {
	status txStatus
	values map[string]float64
	dead   []string
}

// QueryExpectation is what one iteration's workload promises the object
// extent — and, transitively, every index over it — after recovery.
type QueryExpectation struct {
	Present       map[string]float64   // sym → price that must be in the scan
	Absent        map[string]bool      // syms that must NOT be in the scan
	Indeterminate []map[string]float64 // per interrupted commit: all or none
}

// RunQuery executes one seeded iteration of the query-layer torture in
// dir: set up class + indexes cleanly, run an object workload (creates,
// re-keying updates, deletes, aborted transactions and subtransactions)
// under a randomly scheduled kill-point, reopen through the full stack,
// then verify durability expectations AND the index≡scan oracle.
func RunQuery(seed int64, dir string) (*Iteration, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	it := &Iteration{Seed: seed, Dir: dir}

	syncWAL := rng.Intn(3) == 0
	kp := killPoints[rng.Intn(len(killPoints))]
	for kp.syncOnly && !syncWAL {
		kp = killPoints[rng.Intn(len(killPoints))]
	}
	// Object operations write more records per logical op than the raw
	// storage workload (object bytes + one entry per index), so scale the
	// hit count up to land crashes throughout the run, not just its head.
	on := uint64(1 + rng.Intn(kp.maxHit*3))
	it.Killed = fmt.Sprintf("%s#%d", kp.point, on)

	stk, err := openQueryStack(dir, syncWAL)
	if err != nil {
		return it, err
	}

	// Setup runs unarmed and fully committed: a hash index on sym, an
	// ordered index on price, and a small pre-seeded extent (covering the
	// backfill path). Everything after this point is fair game for the
	// kill-point.
	exp := &QueryExpectation{Present: map[string]float64{}, Absent: map[string]bool{}}
	tx, err := stk.tm.Begin()
	if err != nil {
		return it, err
	}
	for k := 0; k < 5; k++ {
		sym := fmt.Sprintf("seed%d-%d", seed, k)
		price := float64(rng.Intn(20))
		if _, err := stk.reg.New(tx, "STOCK", map[string]any{"sym": sym, "price": price}); err != nil {
			return it, fmt.Errorf("setup new: %w", err)
		}
		exp.Present[sym] = price
	}
	if _, err := stk.qm.CreateIndex(tx, "STOCK", "sym", query.HashIndex); err != nil {
		return it, fmt.Errorf("setup hash index: %w", err)
	}
	if _, err := stk.qm.CreateIndex(tx, "STOCK", "price", query.OrderedIndex); err != nil {
		return it, fmt.Errorf("setup ordered index: %w", err)
	}
	if err := tx.Commit(); err != nil {
		return it, fmt.Errorf("setup commit: %w", err)
	}

	faults.Arm(faults.NewInjector(seed, faults.Trigger{
		Point: kp.point, On: on, Limit: 1, Fault: faults.Fault{Crash: true},
	}))
	crashed := runQueryWorkload(rng, seed, stk, exp)
	faults.Disarm()
	it.Crashed = crashed

	if !crashed {
		if err := stk.st.Close(); err != nil {
			return it, fmt.Errorf("close: %w", err)
		}
	}
	// Crashed stacks are abandoned, not closed — the WAL tail dies with
	// the "process", and so does every in-memory index directory.

	re, err := openQueryStack(dir, syncWAL)
	if err != nil {
		return it, fmt.Errorf("reopen/recovery: %w", err)
	}
	defer re.st.Close()
	if err := VerifyQuery(re, exp); err != nil {
		return it, err
	}
	if err := querySmoke(re, seed); err != nil {
		return it, fmt.Errorf("post-recovery smoke: %w", err)
	}
	return it, nil
}

// runQueryWorkload drives a seeded mix of object transactions — creates,
// price re-keys (index delete+insert), deletes, committed and aborted
// subtransactions, voluntary aborts — and records what each owes the
// extent. Each transaction touches only objects it created itself, so
// expectations compose without cross-transaction ordering analysis.
func runQueryWorkload(rng *rand.Rand, seed int64, stk *queryStack, exp *QueryExpectation) (crashed bool) {
	var txs []*objRecord

	defer func() {
		if r := recover(); r != nil {
			if _, ok := faults.AsCrash(r); !ok {
				panic(r)
			}
			crashed = true
		}
		for _, tr := range txs {
			switch tr.status {
			case txCommitted:
				for sym, price := range tr.values {
					exp.Present[sym] = price
				}
			case txCommitting:
				if len(tr.values) > 0 {
					g := make(map[string]float64, len(tr.values))
					for sym, price := range tr.values {
						g[sym] = price
					}
					exp.Indeterminate = append(exp.Indeterminate, g)
				}
			default:
				for sym := range tr.values {
					exp.Absent[sym] = true
				}
			}
			for _, sym := range tr.dead {
				exp.Absent[sym] = true
			}
		}
	}()

	nTxns := 5 + rng.Intn(6)
	for i := 0; i < nTxns; i++ {
		tr := &objRecord{values: map[string]float64{}}
		txs = append(txs, tr)
		tx, err := stk.tm.Begin()
		if err != nil {
			return
		}
		type made struct {
			sym string
			oid event.OID
		}
		var mine []made
		nOps := 1 + rng.Intn(4)
		for k := 0; k < nOps; k++ {
			sym := fmt.Sprintf("o%d-%d-%d", seed, i, k)
			price := float64(rng.Intn(20))
			inst, err := stk.reg.New(tx, "STOCK", map[string]any{"sym": sym, "price": price})
			if err != nil {
				return
			}
			tr.values[sym] = price
			mine = append(mine, made{sym: sym, oid: inst.OID})
		}
		if len(mine) > 0 && rng.Intn(3) == 0 {
			// Re-key one of our own objects: the ordered index must drop
			// the old price posting and add the new one atomically with
			// the object update.
			j := rng.Intn(len(mine))
			inst, err := stk.reg.Load(tx, mine[j].oid)
			if err != nil {
				return
			}
			price := float64(rng.Intn(20))
			inst.Attrs()["price"] = price
			if err := stk.reg.Persist(tx, inst); err != nil {
				return
			}
			tr.values[mine[j].sym] = price
		}
		if len(mine) > 1 && rng.Intn(4) == 0 {
			// Delete one of our own objects: its postings die with it in
			// every outcome.
			j := rng.Intn(len(mine))
			if err := stk.reg.Delete(tx, mine[j].oid); err != nil {
				return
			}
			delete(tr.values, mine[j].sym)
			tr.dead = append(tr.dead, mine[j].sym)
			mine = append(mine[:j], mine[j+1:]...)
		}
		if rng.Intn(3) == 0 {
			// Subtransaction: its object follows the parent iff the sub
			// commits; a sub-abort must undo the index entries right now,
			// while the parent lives on.
			sub, err := tx.BeginSub()
			if err != nil {
				return
			}
			sym := fmt.Sprintf("o%d-%d-sub", seed, i)
			price := float64(rng.Intn(20))
			if _, err := stk.reg.New(sub, "STOCK", map[string]any{"sym": sym, "price": price}); err != nil {
				return
			}
			if rng.Intn(2) == 0 {
				if err := sub.Commit(); err != nil {
					return
				}
				tr.values[sym] = price
			} else {
				if err := sub.Abort(); err != nil {
					return
				}
				tr.dead = append(tr.dead, sym)
			}
		}
		if rng.Intn(10) < 7 {
			tr.status = txCommitting
			if err := tx.Commit(); err != nil {
				return
			}
			tr.status = txCommitted
		} else {
			tr.status = txAborting
			if err := tx.Abort(); err != nil {
				return
			}
			tr.status = txAborted
		}
	}
	return
}

// VerifyQuery checks the recovered stack against the expectation, then
// runs the index≡scan oracle: every index that survived recovery must
// answer every key exactly as a full extent scan does — equality probes on
// each distinct key plus a spread of range scans on the ordered index —
// and must do so from its directories, never by falling back to the
// extent.
func VerifyQuery(stk *queryStack, exp *QueryExpectation) error {
	tx, err := stk.tm.Begin()
	if err != nil {
		return err
	}
	defer tx.Abort()

	// Ground truth: one full extent scan.
	type obj struct {
		oid   event.OID
		price float64
	}
	scan := map[string]obj{}
	err = stk.reg.ForEach(tx, "STOCK", false, func(inst *object.Instance) bool {
		sym, _ := inst.Attrs()["sym"].(string)
		price, _ := inst.Attrs()["price"].(float64)
		scan[sym] = obj{oid: inst.OID, price: price}
		return true
	})
	if err != nil {
		return fmt.Errorf("extent scan: %w", err)
	}

	for sym, price := range exp.Present {
		got, ok := scan[sym]
		if !ok {
			return fmt.Errorf("invariant: committed object %q missing after recovery", sym)
		}
		if got.price != price {
			return fmt.Errorf("invariant: committed object %q recovered with price %v, want %v", sym, got.price, price)
		}
	}
	for sym := range exp.Absent {
		if _, ok := scan[sym]; ok {
			return fmt.Errorf("invariant: aborted/deleted object %q present after recovery", sym)
		}
	}
	for _, group := range exp.Indeterminate {
		n := 0
		for sym, price := range group {
			if got, ok := scan[sym]; ok {
				if got.price != price {
					return fmt.Errorf("invariant: interrupted commit recovered %q with price %v, want %v", sym, got.price, price)
				}
				n++
			}
		}
		if n != 0 && n != len(group) {
			return fmt.Errorf("invariant: interrupted commit recovered partially (%d of %d objects)", n, len(group))
		}
	}

	// Setup committed both indexes before the kill-point armed, so both
	// must have survived recovery.
	defs := stk.qm.Defs()
	if len(defs) != 2 {
		return fmt.Errorf("invariant: %d index definitions after recovery, want 2 (%v)", len(defs), defs)
	}

	probes0, ranges0, _, _, _ := stk.qm.Stats()

	// Oracle 1: hash-probe every sym the scan found, plus one known-absent
	// key. Each probe must return exactly the scanned object.
	for sym, want := range scan {
		rows, err := stk.qm.Run(tx, query.Q{Class: "STOCK", Where: query.Eq("sym", sym)})
		if err != nil {
			return fmt.Errorf("probe %q: %w", sym, err)
		}
		if len(rows) != 1 || rows[0].OID != want.oid {
			return fmt.Errorf("oracle: probe sym=%q returned %d rows (want oid %d)", sym, len(rows), want.oid)
		}
	}
	if rows, err := stk.qm.Run(tx, query.Q{Class: "STOCK", Where: query.Eq("sym", "no-such-sym")}); err != nil {
		return err
	} else if len(rows) != 0 {
		return fmt.Errorf("oracle: probe of absent sym returned %d rows", len(rows))
	}

	// Oracle 2: range scans over the ordered price index, compared to the
	// extent-scan answer for the same predicate. Prices live in [0,20).
	for _, b := range [][2]float64{{0, 19}, {3, 9}, {12, 12}} {
		p := query.Between("price", b[0], b[1])
		want := map[event.OID]bool{}
		for _, o := range scan {
			if o.price >= b[0] && o.price <= b[1] {
				want[o.oid] = true
			}
		}
		rows, err := stk.qm.Run(tx, query.Q{Class: "STOCK", Where: p})
		if err != nil {
			return fmt.Errorf("range [%v,%v]: %w", b[0], b[1], err)
		}
		if len(rows) != len(want) {
			return fmt.Errorf("oracle: range [%v,%v] returned %d rows, scan says %d", b[0], b[1], len(rows), len(want))
		}
		for _, r := range rows {
			if !want[r.OID] {
				return fmt.Errorf("oracle: range [%v,%v] returned oid %d the scan did not", b[0], b[1], r.OID)
			}
		}
	}

	// The oracle queries above must have been answered by the indexes —
	// a planner that silently fell back to extent scans would make the
	// whole comparison vacuous.
	probes1, ranges1, _, _, _ := stk.qm.Stats()
	if probes1 <= probes0 {
		return fmt.Errorf("oracle: equality probes did not touch the hash index")
	}
	if ranges1 <= ranges0 {
		return fmt.Errorf("oracle: range queries did not touch the ordered index")
	}
	return nil
}

// querySmoke proves the recovered stack accepts new indexed work: create
// an object, commit, find it again through the hash index, and sweep any
// orphaned index entries a crashed DDL might have stranded.
func querySmoke(stk *queryStack, seed int64) error {
	tx, err := stk.tm.Begin()
	if err != nil {
		return err
	}
	if _, err := stk.qm.SweepOrphans(tx); err != nil {
		tx.Abort()
		return fmt.Errorf("orphan sweep: %w", err)
	}
	sym := fmt.Sprintf("smoke-%d", seed)
	inst, err := stk.reg.New(tx, "STOCK", map[string]any{"sym": sym, "price": 7.5})
	if err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	tx, err = stk.tm.Begin()
	if err != nil {
		return err
	}
	defer tx.Abort()
	rows, err := stk.qm.Run(tx, query.Q{Class: "STOCK", Where: query.Eq("sym", sym)})
	if err != nil {
		return err
	}
	if len(rows) != 1 || rows[0].OID != inst.OID {
		return fmt.Errorf("smoke: new object not findable through the index (%d rows)", len(rows))
	}
	return nil
}

// errIsLockConflict reports whether err is the kind of lock-layer refusal
// (deadlock victim, timeout) the race stress treats as a normal retry.
func errIsLockConflict(err error) bool {
	return err != nil && (errors.Is(err, lockmgr.ErrDeadlock) || errors.Is(err, lockmgr.ErrTimeout))
}
