package faulttest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/storage"
)

// tortureIters returns the iteration count: SENTINEL_TORTURE_ITERS if set,
// 500 by default, trimmed under -short so `go test ./...` stays quick.
func tortureIters(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("SENTINEL_TORTURE_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad SENTINEL_TORTURE_ITERS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 60
	}
	return 500
}

// tortureSeed returns the base seed: SENTINEL_TORTURE_SEED if set,
// otherwise derived from the clock. It is always logged, so any failure
// reproduces with SENTINEL_TORTURE_SEED=<seed> SENTINEL_TORTURE_ITERS=<n>.
func tortureSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("SENTINEL_TORTURE_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad SENTINEL_TORTURE_SEED=%q", s)
		}
		return n
	}
	return time.Now().UnixNano()
}

// TestCrashTorture runs hundreds of seeded kill-point schedules against the
// storage manager and asserts the recovery invariants after every one:
// committed values present, aborted and in-flight values absent,
// interrupted commits all-or-nothing, no transactions left active, and the
// store still accepts new work.
func TestCrashTorture(t *testing.T) {
	iters := tortureIters(t)
	seed := tortureSeed(t)
	t.Logf("torture: %d iterations, base seed %d (rerun with SENTINEL_TORTURE_SEED=%d)", iters, seed, seed)

	base := t.TempDir()
	crashes := 0
	byPoint := map[string]int{}
	for i := 0; i < iters; i++ {
		s := seed + int64(i)
		dir := filepath.Join(base, fmt.Sprintf("it%04d", i))
		it, err := Run(s, dir)
		if err != nil {
			t.Fatalf("iteration %d (seed %d, kill %s): %v", i, s, it.Killed, err)
		}
		if it.Crashed {
			crashes++
			byPoint[strings.SplitN(it.Killed, "#", 2)[0]]++
		}
		// Each iteration writes a small database; drop it immediately so
		// a 500-iteration run doesn't accumulate hundreds of files.
		os.RemoveAll(dir)
	}
	t.Logf("torture: %d/%d iterations crashed (per point: %v)", crashes, iters, byPoint)
	if crashes == 0 {
		t.Fatalf("no kill-point ever fired across %d iterations — schedules are miscalibrated", iters)
	}
}

// TestTortureHarnessDetectsBrokenRecovery proves the harness is not
// vacuous: with the RecoverSkipUndo sabotage point armed, recovery skips
// its undo pass, a durable loser transaction survives, and Verify MUST
// report the violation. The same directory recovered without sabotage must
// pass, isolating the failure to the sabotage.
func TestTortureHarnessDetectsBrokenRecovery(t *testing.T) {
	// Sabotaged recovery: the loser's values must be flagged as leaked.
	dir := filepath.Join(t.TempDir(), "sabotage")
	exp, err := SeedLoserDir(dir)
	if err != nil {
		t.Fatalf("seed loser dir: %v", err)
	}
	faults.Arm(faults.NewInjector(1, faults.Trigger{
		Point: faults.RecoverSkipUndo, On: 1, Fault: faults.Fault{Err: faults.ErrInjected},
	}))
	st, err := storage.Open(storage.Options{Dir: dir, PoolSize: 8})
	faults.Disarm()
	if err != nil {
		t.Fatalf("reopen with sabotaged recovery: %v", err)
	}
	verr := Verify(st, exp)
	st.Close()
	if verr == nil {
		t.Fatalf("harness passed a recovery that skipped its undo pass — the invariant checks are vacuous")
	}
	if !strings.Contains(verr.Error(), "present after recovery") {
		t.Fatalf("expected a leaked-loser violation, got: %v", verr)
	}

	// Control: intact recovery over an identical directory passes.
	dir2 := filepath.Join(t.TempDir(), "control")
	exp2, err := SeedLoserDir(dir2)
	if err != nil {
		t.Fatalf("seed control dir: %v", err)
	}
	st2, err := storage.Open(storage.Options{Dir: dir2, PoolSize: 8})
	if err != nil {
		t.Fatalf("reopen control: %v", err)
	}
	defer st2.Close()
	if err := Verify(st2, exp2); err != nil {
		t.Fatalf("intact recovery failed verification: %v", err)
	}
}

// TestWALStickySealAfterFsyncFault is the fail-fast ("fsyncgate")
// regression test: once an fsync fails, the WAL must refuse all further
// appends and flushes with ErrWALSealed rather than silently continuing on
// an unknown durability state.
func TestWALStickySealAfterFsyncFault(t *testing.T) {
	dir := t.TempDir()
	w, err := storage.OpenWAL(filepath.Join(dir, "wal.log"), true)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	defer w.Close()

	if _, err := w.Append(&storage.LogRecord{Type: storage.RecInsert, Txn: 1}); err != nil {
		t.Fatalf("append before fault: %v", err)
	}
	faults.Arm(faults.NewInjector(1, faults.Trigger{
		Point: faults.WALFsync, On: 1, Fault: faults.Fault{},
	}))
	err = w.Flush(^uint64(0))
	faults.Disarm()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("flush under fsync fault: got %v, want ErrInjected", err)
	}

	// The seal must be sticky: every subsequent operation fails fast with
	// ErrWALSealed even though the fault layer is disarmed.
	if _, err := w.Append(&storage.LogRecord{Type: storage.RecInsert, Txn: 2}); !errors.Is(err, storage.ErrWALSealed) {
		t.Fatalf("append after seal: got %v, want ErrWALSealed", err)
	}
	if err := w.Flush(^uint64(0)); !errors.Is(err, storage.ErrWALSealed) {
		t.Fatalf("flush after seal: got %v, want ErrWALSealed", err)
	}
	if err := w.Sealed(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Sealed(): got %v, want the sealing error", err)
	}
}

// TestAllocateRollbackReconciles is the regression test for the Allocate
// double-failure path: when both the extending truncate and the restoring
// truncate fail, the disk manager must re-stat the file and adopt its real
// size instead of assuming the rollback worked.
func TestAllocateRollbackReconciles(t *testing.T) {
	dir := t.TempDir()
	d, err := storage.OpenDisk(filepath.Join(dir, "db.pages"))
	if err != nil {
		t.Fatalf("open disk: %v", err)
	}
	defer d.Close()

	if _, err := d.Allocate(); err != nil {
		t.Fatalf("allocate before fault: %v", err)
	}

	// Hit 1 fails the extend, hit 2 fails the rollback truncate too; the
	// reconcile path re-stats the file.
	faults.Arm(faults.NewInjector(1, faults.Trigger{
		Point: faults.DiskTruncate, On: 1, Every: 1, Limit: 2, Fault: faults.Fault{},
	}))
	_, err = d.Allocate()
	faults.Disarm()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("allocate under truncate fault: got %v, want ErrInjected", err)
	}

	// DiskTruncate fires after the real syscall succeeds ("did the work,
	// reported failure"), so whatever the file's actual size is, the
	// reconcile re-stat must have adopted it — the in-memory page count may
	// never disagree with the file.
	st, err := os.Stat(filepath.Join(dir, "db.pages"))
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	filePages := storage.PageID(st.Size() / storage.PageSize)
	if d.NumPages() != filePages {
		t.Fatalf("page count %d disagrees with file size %d pages after failed rollback", d.NumPages(), filePages)
	}

	// The manager must still allocate correctly afterwards: the next
	// Allocate extends from the reconciled size.
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("allocate after reconcile: %v", err)
	}
	if id != filePages {
		t.Fatalf("allocated page %d, want %d", id, filePages)
	}
}

// TestSingleFailedTruncateRollsBack covers the common single-failure case:
// the extend fails, the rollback succeeds, and the page count and file size
// both stay put.
func TestSingleFailedTruncateRollsBack(t *testing.T) {
	dir := t.TempDir()
	d, err := storage.OpenDisk(filepath.Join(dir, "db.pages"))
	if err != nil {
		t.Fatalf("open disk: %v", err)
	}
	defer d.Close()
	if _, err := d.Allocate(); err != nil {
		t.Fatalf("allocate: %v", err)
	}
	before := d.NumPages()

	faults.Arm(faults.NewInjector(1, faults.Trigger{
		Point: faults.DiskTruncate, On: 1, Limit: 1, Fault: faults.Fault{},
	}))
	_, err = d.Allocate()
	faults.Disarm()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("allocate under truncate fault: got %v, want ErrInjected", err)
	}
	if d.NumPages() != before {
		t.Fatalf("page count %d changed after rolled-back allocate, want %d", d.NumPages(), before)
	}
	st, err := os.Stat(filepath.Join(dir, "db.pages"))
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if got := storage.PageID(st.Size() / storage.PageSize); got != before {
		t.Fatalf("file size %d pages after rollback, want %d", got, before)
	}
}
