// Package rules implements Sentinel's rule manager: ECA rule definition
// with the paper's optional attributes (parameter context, coupling mode,
// priority, rule trigger mode), runtime activation and deactivation, the
// deferred-to-immediate rewrite via the A* operator, condition-side event
// masking, and execution of each triggered rule as a subtransaction on the
// priority scheduler.
package rules

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/faults"
	"repro/internal/lockmgr"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sched"
	"repro/internal/txn"
)

// CouplingMode decides when a triggered rule's condition-action pair runs
// relative to the triggering transaction (HiPAC's coupling modes).
type CouplingMode int

// Coupling modes.
const (
	// Immediate runs the rule at the next scheduling point, inside a
	// subtransaction of the triggering transaction, which is suspended.
	Immediate CouplingMode = iota
	// Deferred postpones the rule to just before the triggering
	// transaction commits. Sentinel implements it by rewriting the event
	// to A*(beginTransaction, E, preCommitTransaction).
	Deferred
	// Detached runs the rule in a separate top-level transaction,
	// asynchronously with the triggering one.
	Detached
)

// String returns the Sentinel keyword for the mode.
func (m CouplingMode) String() string {
	switch m {
	case Immediate:
		return "IMMEDIATE"
	case Deferred:
		return "DEFERRED"
	case Detached:
		return "DETACHED"
	default:
		return fmt.Sprintf("CouplingMode(%d)", int(m))
	}
}

// ParseCoupling converts a Sentinel keyword to a CouplingMode.
func ParseCoupling(s string) (CouplingMode, error) {
	switch {
	case eq(s, "IMMEDIATE"), s == "":
		return Immediate, nil
	case eq(s, "DEFERRED"):
		return Deferred, nil
	case eq(s, "DETACHED"):
		return Detached, nil
	default:
		return Immediate, fmt.Errorf("rules: unknown coupling mode %q", s)
	}
}

// TriggerMode decides which event occurrences may trigger the rule
// relative to its definition time.
type TriggerMode int

// Trigger modes.
const (
	// Now only considers constituent occurrences from the rule's
	// definition instant onward (the default).
	Now TriggerMode = iota
	// Previous also accepts occurrences that temporally precede the rule
	// definition (possible when the event expression predates the rule).
	Previous
)

// String returns the Sentinel keyword for the mode.
func (m TriggerMode) String() string {
	switch m {
	case Now:
		return "NOW"
	case Previous:
		return "PREVIOUS"
	default:
		return fmt.Sprintf("TriggerMode(%d)", int(m))
	}
}

// ParseTrigger converts a Sentinel keyword to a TriggerMode.
func ParseTrigger(s string) (TriggerMode, error) {
	switch {
	case eq(s, "NOW"), s == "":
		return Now, nil
	case eq(s, "PREVIOUS"):
		return Previous, nil
	default:
		return Now, fmt.Errorf("rules: unknown trigger mode %q", s)
	}
}

func eq(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 32
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Visibility scopes a class-owned rule — the paper's future-work item
// "expanding the rule management support to public, private, and
// protected rules", realized against the class hierarchy:
//
//   - Public rules fire for any matching occurrence (the default).
//   - Protected rules fire only when every method-event constituent comes
//     from the owning class or one of its subclasses.
//   - Private rules fire only for the owning class itself, not its
//     subclasses.
type Visibility int

// Rule visibilities.
const (
	// Public rules are unrestricted.
	Public Visibility = iota
	// Protected rules cover the owning class's subtree.
	Protected
	// Private rules cover exactly the owning class.
	Private
)

// String returns the keyword for the visibility.
func (v Visibility) String() string {
	switch v {
	case Public:
		return "PUBLIC"
	case Protected:
		return "PROTECTED"
	case Private:
		return "PRIVATE"
	default:
		return fmt.Sprintf("Visibility(%d)", int(v))
	}
}

// ParseVisibility converts a keyword to a Visibility.
func ParseVisibility(s string) (Visibility, error) {
	switch {
	case eq(s, "PUBLIC"), s == "":
		return Public, nil
	case eq(s, "PROTECTED"):
		return Protected, nil
	case eq(s, "PRIVATE"):
		return Private, nil
	default:
		return Public, fmt.Errorf("rules: unknown visibility %q", s)
	}
}

// Execution is the information a rule's condition and action receive: the
// triggering occurrence (with the full constituent parameter lists), the
// detection context, and the subtransaction the rule runs in. Database
// operations performed by the action must go through Txn so that nested
// rule triggerings are attributed and scheduled correctly.
type Execution struct {
	Rule       *Rule
	Occurrence *event.Occurrence
	Context    detector.Context
	Txn        *txn.Txn
	task       *sched.Task
}

// Params returns the parameter lists of every constituent primitive
// occurrence, in detection order (the paper's linked PARA_LIST).
func (e *Execution) Params() []event.ParamList { return e.Occurrence.AllParams() }

// Condition is a rule condition: side-effect free, returns whether the
// action should run. A nil Condition is treated as "true".
type Condition func(*Execution) bool

// Action is a rule action. A non-nil error aborts the rule's
// subtransaction (its database effects are rolled back).
type Action func(*Execution) error

// Spec describes a rule to Define. Zero values give the paper's defaults:
// RECENT context, IMMEDIATE coupling, priority 0, NOW trigger mode.
type Spec struct {
	Name      string
	Event     string // name of a defined event
	Condition Condition
	// Where declares the condition declaratively instead: the rule fires
	// when any object of the class satisfies the predicate, evaluated
	// through the query engine (index pushdown, snapshot reads). Mutually
	// exclusive with Condition.
	Where    *Where
	Action   Action
	Context  detector.Context
	Coupling CouplingMode
	Priority int
	Trigger  TriggerMode
	// Class, when non-empty, makes this a class-owned rule subject to
	// Visibility scoping against the class hierarchy.
	Class      string
	Visibility Visibility
}

// Where is a declarative rule condition: EXISTS(class WHERE pred). The
// planner binds the predicate to a secondary index when one covers it,
// turning the condition from an O(extent) closure into an index probe.
// Class defaults to the spec's owning Class; a nil Pred tests extent
// non-emptiness. Evaluation runs under the firing transaction — with
// SnapshotConditions, against its MVCC snapshot.
type Where struct {
	Class      string
	Subclasses bool
	Pred       query.Pred
}

// Errors reported by the rule manager.
var (
	ErrDuplicateRule = errors.New("rules: rule already defined")
	ErrUnknownRule   = errors.New("rules: unknown rule")
	ErrNoAction      = errors.New("rules: rule needs an action")
	// ErrCascadeShed reports a rule triggering dropped because its cascade
	// depth (rules triggered by rules) exceeded the configured limit. The
	// shed is reported through OnError and counted, never silent.
	ErrCascadeShed = errors.New("rules: cascade depth limit exceeded, triggering shed")
)

// Rule is a defined ECA rule.
type Rule struct {
	mgr       *Manager
	name      string
	eventName string // the event subscribed to (rewritten for deferred)
	userEvent string // the event the user named
	cond      Condition
	action    Action
	ctx       detector.Context
	coupling  CouplingMode
	priority  int
	trigger   TriggerMode
	class     string
	vis       Visibility

	mu      sync.Mutex
	enabled bool
	minSeq  uint64
	unsub   func()

	// Fired counts completed executions (condition evaluated), for tests
	// and the debugger.
	fired uint64
}

// Name returns the rule's name.
func (r *Rule) Name() string { return r.name }

// Event returns the name of the event the user defined the rule on.
func (r *Rule) Event() string { return r.userEvent }

// Coupling returns the rule's coupling mode.
func (r *Rule) Coupling() CouplingMode { return r.coupling }

// Priority returns the rule's priority class.
func (r *Rule) Priority() int { return r.priority }

// Context returns the rule's parameter context.
func (r *Rule) Context() detector.Context { return r.ctx }

// Enabled reports whether the rule currently fires.
func (r *Rule) Enabled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.enabled
}

// Fired returns the number of completed executions.
func (r *Rule) Fired() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired
}

// Manager owns the rule catalog and drives rule execution.
type Manager struct {
	det   *detector.Detector
	txns  *txn.Manager
	sched *sched.Scheduler

	mu       sync.Mutex
	rules    map[string]*Rule
	reserved map[string]struct{}    // names claimed by in-flight Defines
	running  map[uint64]*sched.Task // rule subtxn id -> its task
	detached sync.WaitGroup

	// RetryMax is how many times a deadlock- or timeout-aborted rule body
	// is retried, each attempt in a fresh subtransaction. Zero disables
	// retry; the facade defaults it via sentinel.Options.RuleRetries.
	RetryMax int
	// RetryBackoff is the base delay of the bounded exponential backoff
	// between retry attempts: base << attempt, with the shift capped at 6
	// (64×). Zero means retry immediately.
	RetryBackoff time.Duration
	// MaxCascade caps the nesting depth of rule triggerings (1 =
	// top-level). A triggering that would exceed it is shed — dropped,
	// counted, and reported as ErrCascadeShed — instead of recursing
	// without bound. Zero means unlimited.
	MaxCascade int
	// SnapshotConditions evaluates rule conditions against an MVCC
	// snapshot of the triggering transaction's state (committed state plus
	// the family's own writes) instead of taking Shared locks per read.
	// Conditions become read-only under it: a condition that writes gets
	// txn.ErrReadOnly. The facade defaults it on via
	// sentinel.Options.SnapshotConditions.
	SnapshotConditions bool

	// ExistsFn evaluates Where conditions: does any object of class
	// satisfy pred, as seen by tx? The facade wires it to the query
	// engine's Exists (set once at startup, before rules run). A rule
	// whose Where fires with no ExistsFn reports through OnError and
	// does not run its action.
	ExistsFn func(tx *txn.Txn, class string, subclasses bool, pred query.Pred) (bool, error)

	// OnError receives errors from rule executions (aborted actions,
	// subtransaction failures). Default: discard.
	OnError func(rule string, err error)

	// met is nil until RegisterMetrics wires the manager into a registry;
	// it is written once at startup, before rules execute concurrently.
	met *ruleMetrics
}

// ruleMetrics holds the rule manager's registered instruments.
type ruleMetrics struct {
	fires     [3]*obs.Counter // indexed by CouplingMode
	enables   *obs.Counter
	disables  *obs.Counter
	errors    *obs.Counter
	retries   *obs.Counter
	exhausted *obs.Counter
	sheds     *obs.Counter
	cascade   *obs.Histogram
	bulkLoad  *obs.Histogram
}

// RegisterMetrics wires the rule manager into a metrics registry: rule
// firings by coupling mode, enable/disable churn, execution errors, and
// the cascade-depth distribution (length of the effective-priority path —
// 1 for top-level triggerings, deeper for rules triggered by rules).
func (m *Manager) RegisterMetrics(r *obs.Registry) {
	met := &ruleMetrics{
		enables: r.Counter("sentinel_rules_enables_total",
			"Rule activations (Define and explicit Enable)."),
		disables: r.Counter("sentinel_rules_disables_total",
			"Rule deactivations (Disable and Drop)."),
		errors: r.Counter("sentinel_rules_errors_total",
			"Rule executions that failed (aborted actions, subtransaction errors, panics)."),
		retries: r.Counter("sentinel_rules_retries_total",
			"Rule attempts re-run after a deadlock or lock-timeout abort."),
		exhausted: r.Counter("sentinel_rules_retries_exhausted_total",
			"Rules that still failed with a retryable error after the retry budget."),
		sheds: r.Counter("sentinel_rules_sheds_total",
			"Rule triggerings dropped by the cascade depth limit."),
		cascade: r.Histogram("sentinel_rules_cascade_depth",
			"Nesting depth of rule triggerings (1 = top-level, deeper = rules triggered by rules).",
			obs.DepthBuckets()),
		bulkLoad: r.Histogram("sentinel_rules_bulk_load_seconds",
			"Wall time of DefineBatch bulk rule loads (reservation through catalog install).",
			obs.DurationBuckets()),
	}
	met.fires[Immediate] = r.Counter("sentinel_rules_fires_immediate_total",
		"Completed executions of IMMEDIATE rules.")
	met.fires[Deferred] = r.Counter("sentinel_rules_fires_deferred_total",
		"Completed executions of DEFERRED rules.")
	met.fires[Detached] = r.Counter("sentinel_rules_fires_detached_total",
		"Completed executions of DETACHED rules.")
	r.GaugeFunc("sentinel_rules_defined",
		"Rules currently in the catalog.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.rules))
		})
	m.met = met
}

// NewManager wires a rule manager to its detector, transaction manager and
// scheduler.
func NewManager(det *detector.Detector, txns *txn.Manager, s *sched.Scheduler) *Manager {
	return &Manager{
		det:      det,
		txns:     txns,
		sched:    s,
		rules:    make(map[string]*Rule),
		reserved: make(map[string]struct{}),
		running:  make(map[uint64]*sched.Task),
	}
}

// Scheduler returns the rule scheduler (the facade drains it at
// scheduling points).
func (m *Manager) Scheduler() *sched.Scheduler { return m.sched }

// validateSpec rejects specs no Define path accepts.
func validateSpec(spec Spec) error {
	if spec.Action == nil {
		return fmt.Errorf("%w: %q", ErrNoAction, spec.Name)
	}
	if spec.Class == "" && spec.Visibility != Public {
		return fmt.Errorf("rules: %q: %v visibility requires an owning class", spec.Name, spec.Visibility)
	}
	if spec.Where != nil {
		if spec.Condition != nil {
			return fmt.Errorf("rules: %q: Where and Condition are mutually exclusive", spec.Name)
		}
		if spec.Where.Class == "" && spec.Class == "" {
			return fmt.Errorf("rules: %q: Where needs a class (Where.Class or Spec.Class)", spec.Name)
		}
	}
	return nil
}

// specCond resolves the spec's condition: the Condition func as given, or
// a closure compiling Where through the query engine. The closure runs
// inside runBody's snapshot scope when SnapshotConditions is on, so the
// probe reads the firing transaction's consistent view for free.
func (m *Manager) specCond(spec *Spec) Condition {
	if spec.Where == nil {
		return spec.Condition
	}
	w := *spec.Where
	if w.Class == "" {
		w.Class = spec.Class
	}
	name := spec.Name
	return func(exec *Execution) bool {
		fn := m.ExistsFn
		if fn == nil {
			m.reportError(name, errors.New("rules: Where condition but no query engine wired (Manager.ExistsFn)"))
			return false
		}
		ok, err := fn(exec.Txn, w.Class, w.Subclasses, w.Pred)
		if err != nil {
			m.reportError(name, fmt.Errorf("rules: Where condition: %w", err))
			return false
		}
		return ok
	}
}

// reserve claims the name for an in-flight Define under one critical
// section, so two concurrent Defines of the same name cannot both pass
// the duplicate check (the loser used to silently overwrite the winner
// in the catalog and leak its detector subscription).
func (m *Manager) reserve(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.rules[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateRule, name)
	}
	if _, dup := m.reserved[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateRule, name)
	}
	m.reserved[name] = struct{}{}
	return nil
}

// unreserve abandons a reservation after a failed Define.
func (m *Manager) unreserve(name string) {
	m.mu.Lock()
	delete(m.reserved, name)
	m.mu.Unlock()
}

// Define creates, registers and enables a rule.
func (m *Manager) Define(spec Spec) (*Rule, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	if err := m.reserve(spec.Name); err != nil {
		return nil, err
	}

	eventName := spec.Event
	if spec.Coupling == Deferred {
		// The Sentinel pre-processor rewrite: deferred on E becomes
		// immediate on A*(beginTransaction, E, preCommitTransaction).
		rewritten, err := m.deferredEvent(spec.Event)
		if err != nil {
			m.unreserve(spec.Name)
			return nil, err
		}
		eventName = rewritten
	} else if err := m.det.Retain(spec.Event); err != nil {
		m.unreserve(spec.Name)
		return nil, err
	}

	r := &Rule{
		mgr:       m,
		name:      spec.Name,
		eventName: eventName,
		userEvent: spec.Event,
		cond:      m.specCond(&spec),
		action:    spec.Action,
		ctx:       spec.Context,
		coupling:  spec.Coupling,
		priority:  spec.Priority,
		trigger:   spec.Trigger,
		class:     spec.Class,
		vis:       spec.Visibility,
	}
	if err := r.Enable(); err != nil {
		_ = m.det.Release(eventName)
		m.unreserve(spec.Name)
		return nil, err
	}
	m.mu.Lock()
	delete(m.reserved, spec.Name)
	m.rules[spec.Name] = r
	m.mu.Unlock()
	return r, nil
}

// deferredEvent builds (or reuses) the A* rewrite event for a deferred
// rule and returns its name with one pin taken for the defining rule, all
// in one structure-lock window — so a concurrent Drop of the last other
// deferred rule on the same event cannot collect the node between the
// build and the pin.
func (m *Manager) deferredEvent(userEvent string) (string, error) {
	name := "A*(beginTransaction," + userEvent + ",preCommitTransaction)"
	err := m.det.BulkBuild(func(b *detector.Bulk) error {
		return deferredEventIn(b, userEvent, name)
	})
	if err != nil {
		return "", err
	}
	return name, nil
}

// deferredEventIn builds and pins the deferred rewrite inside an open
// bulk window.
func deferredEventIn(b *detector.Bulk, userEvent, name string) error {
	e, err := b.Lookup(userEvent)
	if err != nil {
		return err
	}
	bt, err := b.TransactionEvent(event.BeginTransaction)
	if err != nil {
		return err
	}
	pc, err := b.TransactionEvent(event.PreCommit)
	if err != nil {
		return err
	}
	if _, err := b.AStar(name, bt, e, pc); err != nil {
		return err
	}
	return b.Retain(name)
}

// DefineBatch defines and enables many rules in one detector
// structure-lock window: names are reserved in one catalog critical
// section, every event subtree is built and subscribed under a single
// BulkBuild window (one admission-index invalidation and rebuild for the
// whole batch), and the rules are installed in the catalog together. On
// any error the already-built rules are unwound and nothing is installed.
func (m *Manager) DefineBatch(specs []Spec) ([]*Rule, error) {
	start := time.Now()
	for i := range specs {
		if err := validateSpec(specs[i]); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	for i := range specs {
		name := specs[i].Name
		_, dupR := m.rules[name]
		_, dupP := m.reserved[name]
		if dupR || dupP {
			for j := 0; j < i; j++ {
				delete(m.reserved, specs[j].Name)
			}
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrDuplicateRule, name)
		}
		m.reserved[name] = struct{}{}
	}
	m.mu.Unlock()

	built := make([]*Rule, 0, len(specs))
	err := m.det.BulkBuild(func(b *detector.Bulk) error {
		for i := range specs {
			spec := &specs[i]
			eventName := spec.Event
			if spec.Coupling == Deferred {
				rewritten := "A*(beginTransaction," + spec.Event + ",preCommitTransaction)"
				if err := deferredEventIn(b, spec.Event, rewritten); err != nil {
					return err
				}
				eventName = rewritten
			} else if err := b.Retain(spec.Event); err != nil {
				return err
			}
			r := &Rule{
				mgr:       m,
				name:      spec.Name,
				eventName: eventName,
				userEvent: spec.Event,
				cond:      m.specCond(spec),
				action:    spec.Action,
				ctx:       spec.Context,
				coupling:  spec.Coupling,
				priority:  spec.Priority,
				trigger:   spec.Trigger,
				class:     spec.Class,
				vis:       spec.Visibility,
			}
			unsub, err := b.Subscribe(eventName, spec.Context, r)
			if err != nil {
				_ = b.Release(eventName)
				return err
			}
			// The rule is enabled directly: it is not yet published, so no
			// concurrent Enable/Disable can race the unlocked dance Enable
			// performs for published rules.
			r.unsub = unsub
			r.enabled = true
			if spec.Trigger == Now {
				r.minSeq = b.SeqNow() + 1
			}
			built = append(built, r)
		}
		return nil
	})
	if err != nil {
		for _, r := range built {
			r.Disable()
			_ = m.det.Release(r.eventName)
		}
		m.mu.Lock()
		for i := range specs {
			delete(m.reserved, specs[i].Name)
		}
		m.mu.Unlock()
		return nil, err
	}
	m.mu.Lock()
	for _, r := range built {
		delete(m.reserved, r.name)
		m.rules[r.name] = r
	}
	m.mu.Unlock()
	if met := m.met; met != nil {
		met.enables.Add(uint64(len(built)))
		met.bulkLoad.ObserveDuration(time.Since(start))
	}
	return built, nil
}

// Get returns a defined rule.
func (m *Manager) Get(name string) (*Rule, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.rules[name]; ok {
		return r, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownRule, name)
}

// Rules returns the names of all defined rules.
func (m *Manager) Rules() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.rules))
	for n := range m.rules {
		out = append(out, n)
	}
	return out
}

// Drop disables and removes a rule, releasing its hold on the event
// subtree: subexpression nodes no surviving rule or alias reaches are
// collected, and for a deferred rule the A*(beginTransaction, E,
// preCommit) rewrite event goes with the last deferred rule on E —
// previously it stayed resident in the graph forever with no subscribers.
func (m *Manager) Drop(name string) error {
	m.mu.Lock()
	r, ok := m.rules[name]
	delete(m.rules, name)
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
	r.Disable()
	_ = m.det.Release(r.eventName)
	return nil
}

// WaitDetached blocks until every in-flight detached rule finished; the
// facade calls it on close.
func (m *Manager) WaitDetached() { m.detached.Wait() }

// Enable (re)activates the rule. In NOW trigger mode only occurrences
// from this instant onward are considered.
//
// r.mu is never held across the detector call: Notify runs under the
// event graph's component locks and takes r.mu, so holding r.mu while
// Subscribe acquires those same locks would invert the order and
// deadlock. Instead the subscription happens unlocked and a concurrent
// Enable is resolved afterwards — the loser unsubscribes its duplicate.
func (r *Rule) Enable() error {
	r.mu.Lock()
	if r.enabled {
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	unsub, err := r.mgr.det.Subscribe(r.eventName, r.ctx, r)
	if err != nil {
		return err
	}
	var minSeq uint64
	if r.trigger == Now {
		minSeq = r.mgr.det.SeqNow() + 1
	}
	r.mu.Lock()
	if r.enabled {
		r.mu.Unlock()
		unsub() // lost a race with another Enable; drop the duplicate
		return nil
	}
	r.unsub = unsub
	r.enabled = true
	r.minSeq = minSeq
	r.mu.Unlock()
	if met := r.mgr.met; met != nil {
		met.enables.Inc()
	}
	return nil
}

// Disable deactivates the rule: it unsubscribes from the event graph, so
// the per-node context counters drop and detection in this context stops
// if no other rule needs it. The unsubscribe runs after r.mu is released,
// for the same lock-order reason as Enable.
func (r *Rule) Disable() {
	r.mu.Lock()
	if !r.enabled {
		r.mu.Unlock()
		return
	}
	unsub := r.unsub
	r.unsub = nil
	r.enabled = false
	r.mu.Unlock()
	unsub()
	if met := r.mgr.met; met != nil {
		met.disables.Inc()
	}
}

// inScope applies the rule's visibility: every method-event constituent
// must come from the owning class (private) or its subtree (protected).
// Non-method constituents (transaction, explicit, temporal events) carry
// no class and pass.
func (r *Rule) inScope(occ *event.Occurrence) bool {
	if r.class == "" || r.vis == Public {
		return true
	}
	for _, leaf := range occ.Leaves() {
		if leaf.Kind != event.KindMethod {
			continue
		}
		switch r.vis {
		case Private:
			if leaf.Class != r.class {
				return false
			}
		case Protected:
			if !r.mgr.det.IsSubclass(leaf.Class, r.class) {
				return false
			}
		}
	}
	return true
}

// Name, Visibility and Class accessors for introspection.

// Class returns the owning class ("" for application-level rules).
func (r *Rule) Class() string { return r.class }

// Visibility returns the rule's scope.
func (r *Rule) Visibility() Visibility { return r.vis }

// Notify implements detector.Subscriber: it packages the triggered rule as
// a scheduler task (or a detached goroutine). It runs under the detector
// lock, so it only enqueues.
func (r *Rule) Notify(occ *event.Occurrence, ctx detector.Context) {
	r.mu.Lock()
	if !r.enabled || occ.StartSeq() < r.minSeq {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	m := r.mgr
	if r.coupling == Detached {
		m.detached.Add(1)
		go func() {
			defer m.detached.Done()
			m.runDetached(r, occ, ctx)
		}()
		return
	}

	// Parent: the transaction the occurrence was signalled under. If it
	// was a rule's subtransaction, this is a nested triggering: the new
	// rule becomes a child subtransaction and its effective priority
	// derives from the triggering rule's (depth-first execution).
	m.mu.Lock()
	parentTask := m.running[occ.Txn]
	m.mu.Unlock()
	var prio sched.Path
	if parentTask != nil {
		prio = parentTask.Priority.Child(r.priority)
	} else {
		prio = sched.Path{r.priority}
	}
	// Cascade limit: a rule storm (rules triggering rules) is shed here,
	// before the task exists, so the scheduler never sees unbounded depth.
	if max := m.MaxCascade; max > 0 && len(prio) > max {
		if met := m.met; met != nil {
			met.sheds.Inc()
		}
		m.reportError(r.name, fmt.Errorf("%w (depth %d, limit %d)", ErrCascadeShed, len(prio), max))
		return
	}
	task := &sched.Task{Rule: r.name, Priority: prio}
	task.Run = func(t *sched.Task) { m.execute(r, occ, ctx, t) }
	m.sched.Enqueue(task)
}

// execute runs one triggered rule inside a fresh subtransaction of the
// triggering transaction (Figure 3 of the paper: condition and action
// packaged as the body of the thread, bracketed by begin/end
// subtransaction).
func (m *Manager) execute(r *Rule, occ *event.Occurrence, ctx detector.Context, t *sched.Task) {
	if !r.inScope(occ) {
		return
	}
	if met := m.met; met != nil {
		met.cascade.Observe(float64(len(t.Priority)))
	}
	m.runWithRetry(r, occ, ctx, t)
}

// runDetached executes a detached rule in its own top-level transaction.
func (m *Manager) runDetached(r *Rule, occ *event.Occurrence, ctx detector.Context) {
	if !r.inScope(occ) {
		return
	}
	if met := m.met; met != nil {
		met.cascade.Observe(1)
	}
	m.runWithRetry(r, occ, ctx, nil)
}

// retryable reports whether a rule failure is transient contention — a
// deadlock-victim or lock-timeout abort — rather than a real action error.
// Only these are worth re-running: the aborted subtransaction released its
// locks, so a fresh attempt can succeed once the conflicting rule finishes.
func retryable(err error) bool {
	return errors.Is(err, lockmgr.ErrDeadlock) || errors.Is(err, lockmgr.ErrTimeout)
}

// runWithRetry executes the rule body, re-running deadlock- and
// timeout-aborted attempts (each in a fresh subtransaction) with bounded
// exponential backoff until the attempt succeeds, fails for a non-retryable
// reason, or the retry budget is spent. The fired counter and fires metric
// advance once per triggering — on the final attempt — never per retry.
// t is nil for detached rules, which run in their own top-level transaction.
func (m *Manager) runWithRetry(r *Rule, occ *event.Occurrence, ctx detector.Context, t *sched.Task) {
	for attempt := 0; ; attempt++ {
		ran, err := m.attempt(r, occ, ctx, t)
		if err != nil && retryable(err) && attempt < m.RetryMax {
			if met := m.met; met != nil {
				met.retries.Inc()
			}
			if m.RetryBackoff > 0 {
				shift := attempt
				if shift > 6 {
					shift = 6
				}
				time.Sleep(m.RetryBackoff << shift)
			}
			continue
		}
		if ran {
			r.mu.Lock()
			r.fired++
			r.mu.Unlock()
			if met := m.met; met != nil {
				met.fires[r.coupling].Inc()
			}
		}
		if err != nil {
			if retryable(err) {
				if met := m.met; met != nil {
					met.exhausted.Inc()
				}
			}
			m.reportError(r.name, err)
		}
		return
	}
}

// attempt runs one execution attempt in a fresh subtransaction (or
// top-level transaction for detached rules and occurrences outside any live
// transaction). ran reports whether the body actually evaluated — false for
// begin failures and panics, matching what the fired counter means.
func (m *Manager) attempt(r *Rule, occ *event.Occurrence, ctx detector.Context, t *sched.Task) (ran bool, err error) {
	parent := m.txns.Lookup(occ.Txn)
	var sub *txn.Txn
	if t != nil && parent != nil {
		sub, err = parent.BeginSub()
	} else {
		// Detached rule, or occurrence outside any live transaction (e.g.
		// explicit event with no txn): own top-level transaction.
		sub, err = m.txns.Begin()
	}
	if err != nil {
		return false, fmt.Errorf("begin rule subtransaction: %w", err)
	}
	if t != nil {
		m.mu.Lock()
		m.running[sub.ID()] = t
		m.mu.Unlock()
		defer func() {
			m.mu.Lock()
			delete(m.running, sub.ID())
			m.mu.Unlock()
		}()
	}
	return m.runBody(r, &Execution{Rule: r, Occurrence: occ, Context: ctx, Txn: sub, task: t})
}

// runBody evaluates the condition (with the detector masked, §3.2.1) and,
// if true, the action; the subtransaction commits unless the action failed
// or panicked. The attempt's subtransaction is always resolved — committed
// on success, aborted on error or panic — before runBody returns, so a
// retry can safely open a fresh one.
func (m *Manager) runBody(r *Rule, exec *Execution) (ran bool, err error) {
	committed := false
	defer func() {
		if p := recover(); p != nil {
			_ = exec.Txn.Abort()
			ran = false
			err = fmt.Errorf("rule panicked: %v", p)
		} else if !committed {
			_ = exec.Txn.Abort()
		}
	}()

	ok := true
	if r.cond != nil {
		m.det.SetMasked(true)
		if m.SnapshotConditions {
			// Lock-free condition evaluation: reads see a snapshot of
			// committed state plus the triggering family's own writes, so
			// the condition neither blocks on nor blocks the commit
			// pipeline. The snapshot lives exactly as long as the
			// evaluation; the deferred release keeps a panicking condition
			// from pinning the GC horizon forever.
			func() {
				release, _ := exec.Txn.UseSnapshot()
				defer release()
				ok = r.cond(exec)
			}()
		} else {
			ok = r.cond(exec)
		}
		m.det.SetMasked(false)
	}
	var actErr error
	if ok {
		// Fault hook: an Err verdict stands in for the action failing, a
		// Panic verdict for the action panicking — without needing a rule
		// that misbehaves on cue.
		if actErr = faults.Check(faults.RuleAction); actErr == nil {
			actErr = r.action(exec)
		}
	}
	ran = true
	if actErr != nil {
		_ = exec.Txn.Abort()
		committed = true // finished (aborted) — don't double-abort
		return ran, actErr
	}
	if cerr := exec.Txn.Commit(); cerr != nil {
		return ran, fmt.Errorf("commit rule subtransaction: %w", cerr)
	}
	committed = true
	return ran, nil
}

func (m *Manager) reportError(rule string, err error) {
	if met := m.met; met != nil {
		met.errors.Inc()
	}
	if m.OnError != nil {
		m.OnError(rule, err)
	}
}
