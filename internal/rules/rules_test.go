package rules

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/lockmgr"
	"repro/internal/sched"
	"repro/internal/txn"
)

// env bundles the subsystems a rule manager needs.
type env struct {
	det   *detector.Detector
	txns  *txn.Manager
	sched *sched.Scheduler
	rules *Manager
}

func newEnv(t *testing.T) *env {
	t.Helper()
	d := detector.New()
	d.DeclareClass("C", "")
	for _, e := range []string{"e1", "e2", "e3"} {
		if _, err := d.DefinePrimitive(e, "C", "m"+e[1:], event.End, 0); err != nil {
			t.Fatal(err)
		}
	}
	tm := txn.NewManager(nil, lockmgr.New())
	s := sched.New(4)
	m := NewManager(d, tm, s)
	ev := &env{det: d, txns: tm, sched: s, rules: m}
	// Wire transaction events into the detector, like the facade does.
	tm.SetListener(func(name string, id uint64) {
		d.SignalTxn(name, id)
		if name == "preCommitTransaction" {
			s.Drain()
		}
	})
	return ev
}

// sig signals eN under the given transaction and drains the scheduler
// (the facade's scheduling point after a reactive method returns).
func (e *env) sig(name string, tx *txn.Txn) {
	id := uint64(0)
	if tx != nil {
		id = tx.ID()
	}
	e.det.SignalMethod("C", "m"+name[1:], event.End, 1, event.NewParams("src", name), id)
	e.sched.Drain()
}

func TestModeStringsAndParsing(t *testing.T) {
	if Immediate.String() != "IMMEDIATE" || Deferred.String() != "DEFERRED" || Detached.String() != "DETACHED" {
		t.Fatal("coupling strings")
	}
	if Now.String() != "NOW" || Previous.String() != "PREVIOUS" {
		t.Fatal("trigger strings")
	}
	if !strings.Contains(CouplingMode(9).String(), "9") || !strings.Contains(TriggerMode(9).String(), "9") {
		t.Fatal("unknown mode strings")
	}
	for _, c := range []struct {
		in   string
		want CouplingMode
	}{{"immediate", Immediate}, {"DEFERRED", Deferred}, {"Detached", Detached}, {"", Immediate}} {
		got, err := ParseCoupling(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseCoupling(%q)=%v,%v", c.in, got, err)
		}
	}
	if _, err := ParseCoupling("zzz"); err == nil {
		t.Fatal("ParseCoupling(zzz)")
	}
	for _, c := range []struct {
		in   string
		want TriggerMode
	}{{"now", Now}, {"PREVIOUS", Previous}, {"", Now}} {
		got, err := ParseTrigger(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseTrigger(%q)=%v,%v", c.in, got, err)
		}
	}
	if _, err := ParseTrigger("zzz"); err == nil {
		t.Fatal("ParseTrigger(zzz)")
	}
}

func TestImmediateRuleFires(t *testing.T) {
	e := newEnv(t)
	var mu sync.Mutex
	var got []string
	_, err := e.rules.Define(Spec{
		Name:  "R1",
		Event: "e1",
		Action: func(x *Execution) error {
			mu.Lock()
			defer mu.Unlock()
			v, _ := x.Params()[0].Get("src")
			got = append(got, v.(string))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	if len(got) != 1 || got[0] != "e1" {
		t.Fatalf("rule executions: %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestConditionGatesAction(t *testing.T) {
	e := newEnv(t)
	var ran int
	_, err := e.rules.Define(Spec{
		Name:      "R",
		Event:     "e1",
		Condition: func(x *Execution) bool { v, _ := x.Params()[0].Get("src"); return v.(string) == "never" },
		Action:    func(*Execution) error { ran++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	if ran != 0 {
		t.Fatal("action ran despite false condition")
	}
	r, _ := e.rules.Get("R")
	if r.Fired() != 1 {
		t.Fatalf("Fired=%d (condition evaluation counts)", r.Fired())
	}
	_ = tx.Commit()
}

func TestConditionMasksEvents(t *testing.T) {
	// Events signalled while a condition runs must not be acknowledged.
	e := newEnv(t)
	var e2Fires int
	if _, err := e.rules.Define(Spec{
		Name:   "Watcher",
		Event:  "e2",
		Action: func(*Execution) error { e2Fires++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rules.Define(Spec{
		Name:  "Prober",
		Event: "e1",
		Condition: func(x *Execution) bool {
			// A condition invoking an event-generating method: masked.
			e.det.SignalMethod("C", "m2", event.End, 1, nil, x.Occurrence.Txn)
			return true
		},
		Action: func(*Execution) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	if e2Fires != 0 {
		t.Fatalf("masked condition still triggered a rule %d times", e2Fires)
	}
	// And signalling e2 outside a condition still works.
	e.sig("e2", tx)
	if e2Fires != 1 {
		t.Fatalf("masking stuck: %d", e2Fires)
	}
	_ = tx.Commit()
}

func TestMultipleRulesOneEvent(t *testing.T) {
	e := newEnv(t)
	var mu sync.Mutex
	var ran []string
	for _, name := range []string{"A", "B", "C"} {
		name := name
		if _, err := e.rules.Define(Spec{
			Name:  name,
			Event: "e1",
			Action: func(*Execution) error {
				mu.Lock()
				ran = append(ran, name)
				mu.Unlock()
				return nil
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	if len(ran) != 3 {
		t.Fatalf("ran=%v", ran)
	}
	_ = tx.Commit()
}

func TestPrioritySerialOrder(t *testing.T) {
	e := newEnv(t)
	e.sched.Serial = true
	var ran []string
	for _, rc := range []struct {
		name string
		prio int
	}{{"low", 1}, {"high", 9}, {"mid", 5}} {
		rc := rc
		if _, err := e.rules.Define(Spec{
			Name:     rc.name,
			Event:    "e1",
			Priority: rc.prio,
			Action:   func(*Execution) error { ran = append(ran, rc.name); return nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	want := []string{"high", "mid", "low"}
	for i := range want {
		if ran[i] != want[i] {
			t.Fatalf("ran=%v want %v", ran, want)
		}
	}
	_ = tx.Commit()
}

func TestDeferredRunsOncePerTxnAtPreCommit(t *testing.T) {
	e := newEnv(t)
	var runs int
	var leaves int
	if _, err := e.rules.Define(Spec{
		Name:     "Def",
		Event:    "e1",
		Coupling: Deferred,
		Context:  detector.Cumulative,
		Action: func(x *Execution) error {
			runs++
			leaves = len(x.Occurrence.Leaves())
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	e.sig("e1", tx)
	e.sig("e1", tx)
	if runs != 0 {
		t.Fatalf("deferred rule ran before commit: %d", runs)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("deferred rule ran %d times, want exactly 1", runs)
	}
	if leaves != 5 { // beginTxn + 3×e1 + preCommit
		t.Fatalf("deferred composite leaves=%d want 5", leaves)
	}

	// A transaction without e1 must not fire the deferred rule.
	tx2, _ := e.txns.Begin()
	e.sig("e2", tx2)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("deferred rule fired without its event: %d", runs)
	}
}

func TestDetachedRunsInOwnTransaction(t *testing.T) {
	e := newEnv(t)
	done := make(chan uint64, 1)
	if _, err := e.rules.Define(Spec{
		Name:     "Det",
		Event:    "e1",
		Coupling: Detached,
		Action: func(x *Execution) error {
			done <- x.Txn.ID()
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	select {
	case id := <-done:
		if id == tx.ID() {
			t.Fatal("detached rule ran inside the triggering transaction")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("detached rule never ran")
	}
	e.rules.WaitDetached()
	_ = tx.Commit()
}

func TestNestedRuleTriggering(t *testing.T) {
	// R1's action raises e2, triggering R2 — nested, depth-first.
	e := newEnv(t)
	e.sched.Serial = true
	var ran []string
	if _, err := e.rules.Define(Spec{
		Name:  "R1",
		Event: "e1",
		Action: func(x *Execution) error {
			ran = append(ran, "R1")
			// Signal from inside the rule, under the rule's subtxn.
			e.det.SignalMethod("C", "m2", event.End, 1, nil, x.Txn.ID())
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rules.Define(Spec{
		Name:   "R2",
		Event:  "e2",
		Action: func(*Execution) error { ran = append(ran, "R2"); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	if len(ran) != 2 || ran[0] != "R1" || ran[1] != "R2" {
		t.Fatalf("ran=%v", ran)
	}
	_ = tx.Commit()
}

func TestNestedDepthFirstBeforeSiblings(t *testing.T) {
	e := newEnv(t)
	e.sched.Serial = true
	var ran []string
	// Two rules on e1: High (prio 9, spawns a child via e2), Low (prio 1).
	if _, err := e.rules.Define(Spec{
		Name: "High", Event: "e1", Priority: 9,
		Action: func(x *Execution) error {
			ran = append(ran, "High")
			e.det.SignalMethod("C", "m2", event.End, 1, nil, x.Txn.ID())
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rules.Define(Spec{
		Name: "Low", Event: "e1", Priority: 1,
		Action: func(*Execution) error { ran = append(ran, "Low"); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rules.Define(Spec{
		Name: "Child", Event: "e2", Priority: 5,
		Action: func(*Execution) error { ran = append(ran, "Child"); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	want := []string{"High", "Child", "Low"}
	for i := range want {
		if i >= len(ran) || ran[i] != want[i] {
			t.Fatalf("ran=%v want %v", ran, want)
		}
	}
	_ = tx.Commit()
}

func TestEnableDisable(t *testing.T) {
	e := newEnv(t)
	var runs int
	r, err := e.rules.Define(Spec{
		Name:   "R",
		Event:  "e1",
		Action: func(*Execution) error { runs++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	r.Disable()
	if r.Enabled() {
		t.Fatal("still enabled")
	}
	e.sig("e1", tx)
	if err := r.Enable(); err != nil {
		t.Fatal(err)
	}
	e.sig("e1", tx)
	if runs != 2 {
		t.Fatalf("runs=%d want 2", runs)
	}
	_ = tx.Commit()
}

func TestTriggerModeNowIgnoresPastOccurrences(t *testing.T) {
	// Two rules on the same SEQ event: one defined after the initiator
	// occurred with NOW (must not fire for that initiator), one with
	// PREVIOUS (fires).
	e := newEnv(t)
	e1, _ := e.det.Lookup("e1")
	e2, _ := e.det.Lookup("e2")
	if _, err := e.det.Seq("s", e1, e2); err != nil {
		t.Fatal(err)
	}
	// An always-on rule keeps the chronicle context live so state exists
	// before the other rules are defined.
	if _, err := e.rules.Define(Spec{
		Name: "keeper", Event: "s", Context: detector.Chronicle,
		Action: func(*Execution) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx) // initiator occurs BEFORE the rules are defined

	var nowRuns, prevRuns int
	if _, err := e.rules.Define(Spec{
		Name: "NowRule", Event: "s", Context: detector.Chronicle, Trigger: Now,
		Action: func(*Execution) error { nowRuns++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rules.Define(Spec{
		Name: "PrevRule", Event: "s", Context: detector.Chronicle, Trigger: Previous,
		Action: func(*Execution) error { prevRuns++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	e.sig("e2", tx) // terminator
	if prevRuns != 1 {
		t.Fatalf("PREVIOUS rule runs=%d want 1", prevRuns)
	}
	if nowRuns != 0 {
		t.Fatalf("NOW rule fired on a pre-definition initiator (%d)", nowRuns)
	}
	_ = tx.Commit()
}

func TestRuleActionErrorAbortsSubtransaction(t *testing.T) {
	e := newEnv(t)
	var reported error
	var mu sync.Mutex
	e.rules.OnError = func(rule string, err error) {
		mu.Lock()
		reported = err
		mu.Unlock()
	}
	boom := errors.New("boom")
	if _, err := e.rules.Define(Spec{
		Name:   "R",
		Event:  "e1",
		Action: func(*Execution) error { return boom },
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	mu.Lock()
	defer mu.Unlock()
	if !errors.Is(reported, boom) {
		t.Fatalf("reported=%v", reported)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("triggering txn must survive rule failure: %v", err)
	}
}

func TestRulePanicRecovered(t *testing.T) {
	e := newEnv(t)
	var reported error
	e.rules.OnError = func(rule string, err error) { reported = err }
	if _, err := e.rules.Define(Spec{
		Name:   "R",
		Event:  "e1",
		Action: func(*Execution) error { panic("kaboom") },
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	if reported == nil || !strings.Contains(reported.Error(), "kaboom") {
		t.Fatalf("reported=%v", reported)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDefineValidation(t *testing.T) {
	e := newEnv(t)
	if _, err := e.rules.Define(Spec{Name: "R", Event: "e1"}); !errors.Is(err, ErrNoAction) {
		t.Fatalf("no action: %v", err)
	}
	act := func(*Execution) error { return nil }
	if _, err := e.rules.Define(Spec{Name: "R", Event: "ghost", Action: act}); err == nil {
		t.Fatal("unknown event accepted")
	}
	if _, err := e.rules.Define(Spec{Name: "R", Event: "e1", Action: act}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rules.Define(Spec{Name: "R", Event: "e2", Action: act}); !errors.Is(err, ErrDuplicateRule) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := e.rules.Get("nope"); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("Get unknown: %v", err)
	}
	if err := e.rules.Drop("nope"); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("Drop unknown: %v", err)
	}
	if err := e.rules.Drop("R"); err != nil {
		t.Fatal(err)
	}
	if len(e.rules.Rules()) != 0 {
		t.Fatalf("Rules=%v", e.rules.Rules())
	}
}

func TestDroppedRuleStopsFiring(t *testing.T) {
	e := newEnv(t)
	var runs int
	if _, err := e.rules.Define(Spec{
		Name: "R", Event: "e1",
		Action: func(*Execution) error { runs++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	if err := e.rules.Drop("R"); err != nil {
		t.Fatal(err)
	}
	e.sig("e1", tx)
	if runs != 1 {
		t.Fatalf("runs=%d want 1", runs)
	}
	_ = tx.Commit()
}

func TestRuleAccessors(t *testing.T) {
	e := newEnv(t)
	r, err := e.rules.Define(Spec{
		Name: "R", Event: "e1", Priority: 7, Coupling: Deferred,
		Context: detector.Cumulative,
		Action:  func(*Execution) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "R" || r.Event() != "e1" || r.Priority() != 7 ||
		r.Coupling() != Deferred || r.Context() != detector.Cumulative || !r.Enabled() {
		t.Fatalf("accessors: %+v", r)
	}
}
