package rules

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/detector"
)

// TestDefineDuplicateNameRace races many Defines of one rule name:
// exactly one must win, and the losers must report ErrDuplicateRule (the
// name is reserved before the event subscription is published, so two
// racing Defines can never both install). Run with -race.
func TestDefineDuplicateNameRace(t *testing.T) {
	e := newEnv(t)
	const racers = 16
	var wg sync.WaitGroup
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.rules.Define(Spec{
				Name:   "R",
				Event:  "e1",
				Action: func(*Execution) error { return nil },
			})
		}(i)
	}
	wg.Wait()
	won := 0
	for _, err := range errs {
		switch {
		case err == nil:
			won++
		case errors.Is(err, ErrDuplicateRule):
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if won != 1 {
		t.Fatalf("%d Defines won the race, want exactly 1", won)
	}
	if _, err := e.rules.Get("R"); err != nil {
		t.Fatalf("winner not installed: %v", err)
	}
}

// TestDropReleasesDeferredRewrite checks that dropping the last deferred
// rule on an event collects the A*(beginTransaction, E, preCommit)
// rewrite node instead of leaking it.
func TestDropReleasesDeferredRewrite(t *testing.T) {
	e := newEnv(t)
	const astar = "A*(beginTransaction,e1,preCommitTransaction)"
	mk := func(name string) {
		t.Helper()
		if _, err := e.rules.Define(Spec{
			Name:     name,
			Event:    "e1",
			Coupling: Deferred,
			Action:   func(*Execution) error { return nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("R1")
	mk("R2")
	if _, err := e.det.Lookup(astar); err != nil {
		t.Fatalf("A* rewrite node missing: %v", err)
	}
	if err := e.rules.Drop("R1"); err != nil {
		t.Fatal(err)
	}
	// R2 still holds the rewrite.
	if _, err := e.det.Lookup(astar); err != nil {
		t.Fatalf("A* node collected while a deferred rule remains: %v", err)
	}
	released := e.det.ReleasedNodes()
	if err := e.rules.Drop("R2"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.det.Lookup(astar); !errors.Is(err, detector.ErrUnknownEvent) {
		t.Fatalf("A* node leaked after last deferred rule dropped: %v", err)
	}
	if e.det.ReleasedNodes() <= released {
		t.Fatal("release counter did not move")
	}
	// e1 itself is untouched.
	if _, err := e.det.Lookup("e1"); err != nil {
		t.Fatalf("user event collected: %v", err)
	}
}

func TestDefineBatchInstallsAndFires(t *testing.T) {
	e := newEnv(t)
	var mu sync.Mutex
	var fired []string
	act := func(name string) Action {
		return func(*Execution) error {
			mu.Lock()
			defer mu.Unlock()
			fired = append(fired, name)
			return nil
		}
	}
	rs, err := e.rules.DefineBatch([]Spec{
		{Name: "B1", Event: "e1", Action: act("B1")},
		{Name: "B2", Event: "e2", Action: act("B2")},
		{Name: "B3", Event: "e1", Coupling: Deferred, Action: act("B3")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("rules=%d", len(rs))
	}
	tx, _ := e.txns.Begin()
	e.sig("e1", tx)
	e.sig("e2", tx)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 3 {
		t.Fatalf("fired=%v", fired)
	}
	// The deferred rule ran at pre-commit, after both immediates.
	if fired[len(fired)-1] != "B3" {
		t.Fatalf("deferred rule order: %v", fired)
	}
}

// TestDefineBatchAllOrNothing checks that an invalid spec in a batch
// installs nothing and leaks no detector pins.
func TestDefineBatchAllOrNothing(t *testing.T) {
	e := newEnv(t)
	noop := func(*Execution) error { return nil }
	_, err := e.rules.DefineBatch([]Spec{
		{Name: "G1", Event: "e1", Action: noop},
		{Name: "G2", Event: "no-such-event", Action: noop},
	})
	if err == nil {
		t.Fatal("batch with unknown event succeeded")
	}
	if _, err := e.rules.Get("G1"); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("G1 installed despite failed batch: %v", err)
	}
	// The names are free again.
	if _, err := e.rules.Define(Spec{Name: "G1", Event: "e1", Action: noop}); err != nil {
		t.Fatalf("name not released after failed batch: %v", err)
	}

	// Duplicates inside one batch are rejected up front.
	if _, err := e.rules.DefineBatch([]Spec{
		{Name: "D", Event: "e1", Action: noop},
		{Name: "D", Event: "e2", Action: noop},
	}); !errors.Is(err, ErrDuplicateRule) {
		t.Fatalf("duplicate in batch: %v", err)
	}
	if _, err := e.rules.Define(Spec{Name: "D", Event: "e1", Action: noop}); err != nil {
		t.Fatalf("name not released after duplicate batch: %v", err)
	}
}

// TestBatchDropCycle loads a batch, drops every rule, and checks the
// graph returns to its pre-batch node count (no leaked operator nodes).
func TestBatchDropCycle(t *testing.T) {
	e := newEnv(t)
	live := e.det.LiveNodes()
	noop := func(*Execution) error { return nil }
	specs := []Spec{
		{Name: "C1", Event: "e1", Coupling: Deferred, Action: noop},
		{Name: "C2", Event: "e2", Coupling: Deferred, Action: noop},
		{Name: "C3", Event: "e1", Action: noop},
	}
	if _, err := e.rules.DefineBatch(specs); err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := e.rules.Drop(s.Name); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.det.LiveNodes(); got != live {
		t.Fatalf("LiveNodes=%d after drop cycle, want %d", got, live)
	}
}
