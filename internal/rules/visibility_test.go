package rules

import (
	"strings"
	"testing"

	"repro/internal/event"
)

func TestVisibilityStrings(t *testing.T) {
	if Public.String() != "PUBLIC" || Protected.String() != "PROTECTED" || Private.String() != "PRIVATE" {
		t.Fatal("visibility strings")
	}
	if !strings.Contains(Visibility(9).String(), "9") {
		t.Fatal("unknown visibility")
	}
	for _, c := range []struct {
		in   string
		want Visibility
	}{{"public", Public}, {"PROTECTED", Protected}, {"Private", Private}, {"", Public}} {
		got, err := ParseVisibility(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseVisibility(%q)=%v,%v", c.in, got, err)
		}
	}
	if _, err := ParseVisibility("zzz"); err == nil {
		t.Fatal("ParseVisibility(zzz)")
	}
}

// hierEnv builds SECURITY <- STOCK <- TECH_STOCK with a class-level event
// on SECURITY.trade that fires for the whole subtree.
func hierEnv(t *testing.T) *env {
	t.Helper()
	e := newEnv(t)
	e.det.DeclareClass("SECURITY", "")
	e.det.DeclareClass("STOCK", "SECURITY")
	e.det.DeclareClass("TECH_STOCK", "STOCK")
	if _, err := e.det.DefinePrimitive("trade", "SECURITY", "trade", event.End, 0); err != nil {
		t.Fatal(err)
	}
	return e
}

func (e *env) trade(class string, tx uint64) {
	e.det.SignalMethod(class, "trade", event.End, 1, nil, tx)
	e.sched.Drain()
}

func TestPrivateRuleFiresOnlyForOwningClass(t *testing.T) {
	e := hierEnv(t)
	var runs []string
	if _, err := e.rules.Define(Spec{
		Name: "P", Event: "trade", Class: "STOCK", Visibility: Private,
		Action: func(x *Execution) error {
			runs = append(runs, x.Occurrence.Leaves()[0].Class)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.trade("SECURITY", tx.ID())   // superclass: out of scope
	e.trade("STOCK", tx.ID())      // owning class: fires
	e.trade("TECH_STOCK", tx.ID()) // subclass: out of scope for private
	if len(runs) != 1 || runs[0] != "STOCK" {
		t.Fatalf("private rule ran for %v", runs)
	}
	_ = tx.Commit()
}

func TestProtectedRuleCoversSubtree(t *testing.T) {
	e := hierEnv(t)
	var runs []string
	if _, err := e.rules.Define(Spec{
		Name: "Pr", Event: "trade", Class: "STOCK", Visibility: Protected,
		Action: func(x *Execution) error {
			runs = append(runs, x.Occurrence.Leaves()[0].Class)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.trade("SECURITY", tx.ID())   // above the owner: out of scope
	e.trade("STOCK", tx.ID())      // fires
	e.trade("TECH_STOCK", tx.ID()) // subclass: fires
	if len(runs) != 2 || runs[0] != "STOCK" || runs[1] != "TECH_STOCK" {
		t.Fatalf("protected rule ran for %v", runs)
	}
	_ = tx.Commit()
}

func TestPublicClassRuleUnrestricted(t *testing.T) {
	e := hierEnv(t)
	var runs int
	if _, err := e.rules.Define(Spec{
		Name: "Pub", Event: "trade", Class: "STOCK", Visibility: Public,
		Action: func(*Execution) error { runs++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	e.trade("SECURITY", tx.ID())
	e.trade("STOCK", tx.ID())
	e.trade("TECH_STOCK", tx.ID())
	if runs != 3 {
		t.Fatalf("public rule runs=%d", runs)
	}
	_ = tx.Commit()
}

func TestVisibilityRequiresClass(t *testing.T) {
	e := newEnv(t)
	_, err := e.rules.Define(Spec{
		Name: "Bad", Event: "e1", Visibility: Private,
		Action: func(*Execution) error { return nil },
	})
	if err == nil {
		t.Fatal("class-less private rule accepted")
	}
}

func TestScopedRuleOnCompositeEvent(t *testing.T) {
	// A protected rule on a composite fires only when all method
	// constituents are in the subtree.
	e := hierEnv(t)
	trade, _ := e.det.Lookup("trade")
	e.det.DeclareClass("OTHER", "")
	other, err := e.det.DefinePrimitive("oevt", "OTHER", "poke", event.End, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.det.And("mix", trade, other); err != nil {
		t.Fatal(err)
	}
	var runs int
	if _, err := e.rules.Define(Spec{
		Name: "Scoped", Event: "mix", Class: "STOCK", Visibility: Protected,
		Action: func(*Execution) error { runs++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.txns.Begin()
	// trade on STOCK + poke on OTHER: the OTHER constituent is outside
	// the subtree, so the protected rule must not run.
	e.det.SignalMethod("STOCK", "trade", event.End, 1, nil, tx.ID())
	e.det.SignalMethod("OTHER", "poke", event.End, 1, nil, tx.ID())
	e.sched.Drain()
	if runs != 0 {
		t.Fatalf("protected composite rule ran %d times", runs)
	}
	_ = tx.Commit()
}

func TestRuleVisibilityAccessors(t *testing.T) {
	e := hierEnv(t)
	r, err := e.rules.Define(Spec{
		Name: "A", Event: "trade", Class: "STOCK", Visibility: Protected,
		Action: func(*Execution) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Class() != "STOCK" || r.Visibility() != Protected {
		t.Fatalf("accessors: %q %v", r.Class(), r.Visibility())
	}
}
