// Package txn implements the Sentinel transaction manager: top-level
// transactions backed by the storage manager (the Exodus role) plus the
// nested subtransactions the paper adds for rule execution. Each rule's
// condition and action run inside a subtransaction; subtransactions take
// locks from the shared lock manager, inherit them to their parent on
// commit, and roll back their own storage effects on abort.
//
// The manager is also an event source: it signals the system transaction
// events the paper relies on — beginTransaction, preCommitTransaction,
// commitTransaction and abortTransaction — to a registered listener
// (normally the local composite event detector). Deferred coupling mode is
// built entirely from these events via the A* operator rewrite.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/lockmgr"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Status is the lifecycle state of a transaction.
type Status int

// Transaction states.
const (
	Active Status = iota
	Committed
	Aborted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Errors reported by the transaction manager.
var (
	ErrFinished       = errors.New("txn: transaction already finished")
	ErrActiveChildren = errors.New("txn: subtransactions still active")
	ErrNotNested      = errors.New("txn: operation requires a subtransaction")
	ErrReadOnly       = errors.New("txn: snapshot transaction is read-only")
)

// EventListener receives transaction system events. name is one of the
// event-name constants in the event package; txn is the top-level
// transaction id. Listeners are called synchronously, in the signalling
// goroutine, which is what lets deferred rules run between preCommit and
// the actual commit.
type EventListener func(name string, txnID uint64)

// Manager creates and tracks transactions. Store may be nil, in which case
// transactions are purely logical (locks and events only) — useful for the
// detector's own tests and for the in-memory examples.
type Manager struct {
	store    *storage.Store
	locks    *lockmgr.Manager
	listener atomic.Value // EventListener

	mu   sync.Mutex
	live map[uint64]*Txn
	next uint64 // ids for store-less mode

	// Always-on lifecycle counters; RegisterMetrics exposes them plus the
	// subtransaction-depth histogram (nil until wired, at startup).
	begins     atomic.Uint64
	subBegins  atomic.Uint64
	snapBegins atomic.Uint64
	commits    atomic.Uint64
	subCommits atomic.Uint64
	aborts     atomic.Uint64
	subAborts  atomic.Uint64
	depthHist  *obs.Histogram
}

// RegisterMetrics wires the transaction manager into a metrics registry:
// begin/commit/abort counters split between top-level transactions and
// rule subtransactions, the live-transaction gauge, and the nesting-depth
// distribution of subtransactions.
func (m *Manager) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("sentinel_txn_begins_total",
		"Top-level transactions begun.", m.begins.Load)
	r.CounterFunc("sentinel_txn_sub_begins_total",
		"Subtransactions begun (one per triggered non-detached rule).", m.subBegins.Load)
	r.CounterFunc("sentinel_txn_snapshot_begins_total",
		"Read-only snapshot transactions begun.", m.snapBegins.Load)
	r.CounterFunc("sentinel_txn_commits_total",
		"Top-level transactions committed.", m.commits.Load)
	r.CounterFunc("sentinel_txn_sub_commits_total",
		"Subtransactions committed into their parents.", m.subCommits.Load)
	r.CounterFunc("sentinel_txn_aborts_total",
		"Top-level transactions aborted.", m.aborts.Load)
	r.CounterFunc("sentinel_txn_sub_aborts_total",
		"Subtransactions rolled back.", m.subAborts.Load)
	r.GaugeFunc("sentinel_txn_active",
		"Transactions (all nesting levels) currently in flight.",
		func() float64 { return float64(m.Live()) })
	m.depthHist = r.Histogram("sentinel_txn_subtxn_depth",
		"Nesting depth at subtransaction begin (1 = direct child of a top-level transaction).",
		obs.DepthBuckets())
}

// NewManager builds a transaction manager over the given store and lock
// manager. locks must not be nil.
func NewManager(store *storage.Store, locks *lockmgr.Manager) *Manager {
	m := &Manager{store: store, locks: locks, live: make(map[uint64]*Txn)}
	m.listener.Store(EventListener(func(string, uint64) {}))
	return m
}

// SetListener installs the transaction-event listener (the LED hook).
func (m *Manager) SetListener(l EventListener) {
	if l == nil {
		l = func(string, uint64) {}
	}
	m.listener.Store(l)
}

func (m *Manager) emit(name string, txnID uint64) {
	m.listener.Load().(EventListener)(name, txnID)
}

// Locks returns the shared lock manager.
func (m *Manager) Locks() *lockmgr.Manager { return m.locks }

// Txn is one transaction, top-level or nested.
type Txn struct {
	mgr    *Manager
	id     uint64
	parent *Txn
	depth  int

	// readOnly marks a snapshot transaction (BeginSnapshot): it holds snap
	// for its whole life, takes no locks, and rejects writes. On a
	// read-write transaction snap is armed temporarily by UseSnapshot
	// (rule-condition evaluation) and nil otherwise. snap is touched only
	// by the transaction's owning goroutine, like every other operation.
	readOnly bool
	snap     *storage.Snapshot

	mu       sync.Mutex
	status   Status
	children int
	// family, maintained on the root only, lists the ids of the root and
	// every subtransaction ever begun beneath it; the event graph flush
	// at transaction end covers occurrences signalled under any of them.
	family []uint64
	// onFinish callbacks run (newest first) after commit or abort, with
	// the final status; the detector uses them to flush the event graph.
	onFinish []func(Status)
}

// FamilyIDs returns the ids of the root transaction and every
// subtransaction ever created beneath it (including finished ones).
func (t *Txn) FamilyIDs() []uint64 {
	r := t.Root()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.family) == 0 {
		return []uint64{r.id}
	}
	out := make([]uint64, len(r.family))
	copy(out, r.family)
	return out
}

// ID returns the transaction's id. Subtransactions have their own ids.
func (t *Txn) ID() uint64 { return t.id }

// Root returns the top-level ancestor (itself for top-level transactions).
func (t *Txn) Root() *Txn {
	r := t
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// Depth returns the nesting depth (0 for top-level).
func (t *Txn) Depth() int { return t.depth }

// Parent returns the immediate parent transaction, nil for top-level ones.
// Layers that keep per-transaction side state (the object catalog's dirty
// sets, index dirty-key sets) use it to merge a committed subtransaction's
// state into its parent, mirroring the storage-level op merge.
func (t *Txn) Parent() *Txn { return t.parent }

// IsNested reports whether t is a subtransaction.
func (t *Txn) IsNested() bool { return t.parent != nil }

// Status returns the transaction's current state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// OnFinish registers f to run when the transaction commits or aborts.
func (t *Txn) OnFinish(f func(Status)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onFinish = append(t.onFinish, f)
}

// Begin starts a top-level transaction and signals beginTransaction.
func (m *Manager) Begin() (*Txn, error) {
	var id uint64
	if m.store != nil {
		sid, err := m.store.Begin()
		if err != nil {
			return nil, err
		}
		id = sid
	} else {
		m.mu.Lock()
		m.next++
		id = m.next | 1<<63 // keep store-less ids out of the store's space
		m.mu.Unlock()
	}
	t := &Txn{mgr: m, id: id, status: Active}
	t.family = []uint64{id}
	m.mu.Lock()
	m.live[id] = t
	m.mu.Unlock()
	m.begins.Add(1)
	m.emit("beginTransaction", id)
	return t, nil
}

// BeginSnapshot starts a read-only snapshot transaction: it captures the
// store's commit-timestamp clock with one atomic load and reads a frozen,
// prefix-consistent committed state through the MVCC version chains. It
// writes no log record, signals no transaction events, and — crucially —
// never touches the lock manager, so it cannot block writers or be blocked
// by them. Write operations return ErrReadOnly.
func (m *Manager) BeginSnapshot() (*Txn, error) {
	m.mu.Lock()
	m.next++
	id := m.next | 1<<63 // logical-id space: the store never sees this txn
	m.mu.Unlock()
	t := &Txn{mgr: m, id: id, status: Active, readOnly: true}
	if m.store != nil {
		t.snap = m.store.Snapshot()
	}
	t.family = []uint64{id}
	m.mu.Lock()
	m.live[id] = t
	m.mu.Unlock()
	m.snapBegins.Add(1)
	return t, nil
}

// ReadOnly reports whether t is a snapshot transaction.
func (t *Txn) ReadOnly() bool { return t.readOnly }

// Snapshot returns the storage snapshot the transaction is reading
// through: always set for snapshot transactions (when a store is
// configured), set on a read-write transaction only while UseSnapshot has
// it armed, nil otherwise.
func (t *Txn) Snapshot() *storage.Snapshot { return t.snap }

// UseSnapshot arms a fresh snapshot on a read-write transaction for the
// scope between the call and release: reads route through the MVCC path —
// committed state as of now plus the transaction family's own uncommitted
// writes — and lock requests are counted as bypassed instead of taken.
// Rule-condition evaluation uses this to drop the Shared-lock round trip
// per firing. On a snapshot transaction (or without a store) it is a
// no-op. Not reentrant: release before arming again.
func (t *Txn) UseSnapshot() (release func(), err error) {
	if t.mgr.store == nil || t.readOnly || t.snap != nil {
		return func() {}, nil
	}
	sn := t.mgr.store.SnapshotFor(t.Root().ID())
	t.snap = sn
	return func() {
		t.snap = nil
		sn.Close()
	}, nil
}

// BeginSub starts a subtransaction of t. Rule executions are packaged in
// subtransactions, one per triggered rule.
func (t *Txn) BeginSub() (*Txn, error) {
	if t.readOnly {
		return nil, ErrReadOnly
	}
	t.mu.Lock()
	if t.status != Active {
		t.mu.Unlock()
		return nil, ErrFinished
	}
	t.children++
	t.mu.Unlock()

	m := t.mgr
	var id uint64
	if m.store != nil {
		sid, err := m.store.BeginSub(t.id)
		if err != nil {
			t.childDone()
			return nil, err
		}
		id = sid
	} else {
		m.mu.Lock()
		m.next++
		id = m.next | 1<<63
		m.mu.Unlock()
	}
	sub := &Txn{mgr: m, id: id, parent: t, depth: t.depth + 1, status: Active}
	root := t.Root()
	root.mu.Lock()
	root.family = append(root.family, id)
	root.mu.Unlock()
	m.locks.SetParent(lockmgr.TxnID(id), lockmgr.TxnID(t.id))
	m.mu.Lock()
	m.live[id] = sub
	m.mu.Unlock()
	m.subBegins.Add(1)
	if h := m.depthHist; h != nil {
		h.Observe(float64(sub.depth))
	}
	return sub, nil
}

func (t *Txn) childDone() {
	t.mu.Lock()
	t.children--
	t.mu.Unlock()
}

// Lock acquires a lock on behalf of this transaction. With a snapshot
// armed (a snapshot transaction, or UseSnapshot's scope) the request is a
// counted no-op: version visibility replaces the lock.
func (t *Txn) Lock(resource string, mode lockmgr.Mode) error {
	if t.readOnly || t.snap != nil {
		t.mgr.locks.NoteBypass()
		return nil
	}
	return t.mgr.locks.Lock(lockmgr.TxnID(t.id), resource, mode)
}

// Insert stores a record under this transaction.
func (t *Txn) Insert(data []byte) (storage.RID, error) {
	if t.readOnly || t.snap != nil {
		return storage.RID{}, ErrReadOnly
	}
	if t.mgr.store == nil {
		return storage.RID{}, errors.New("txn: no store configured")
	}
	return t.mgr.store.Insert(t.id, data)
}

// Read returns the record at rid: through the armed snapshot when one is
// set (lock-free, version-resolved), otherwise the latest state under the
// caller's 2PL locks.
func (t *Txn) Read(rid storage.RID) ([]byte, error) {
	if t.mgr.store == nil {
		return nil, errors.New("txn: no store configured")
	}
	if sn := t.snap; sn != nil {
		return t.mgr.store.ReadSnapshot(sn, rid)
	}
	return t.mgr.store.Read(rid)
}

// Update replaces the record at rid, returning its possibly-new RID.
func (t *Txn) Update(rid storage.RID, data []byte) (storage.RID, error) {
	if t.readOnly || t.snap != nil {
		return storage.RID{}, ErrReadOnly
	}
	if t.mgr.store == nil {
		return storage.RID{}, errors.New("txn: no store configured")
	}
	return t.mgr.store.Update(t.id, rid, data)
}

// Delete removes the record at rid.
func (t *Txn) Delete(rid storage.RID) error {
	if t.readOnly || t.snap != nil {
		return ErrReadOnly
	}
	if t.mgr.store == nil {
		return errors.New("txn: no store configured")
	}
	return t.mgr.store.Delete(t.id, rid)
}

// Commit finishes the transaction. For a top-level transaction the
// preCommitTransaction event is signalled first — this is the hook that
// makes deferred rules run "just before commit" — and the commit proceeds
// only afterwards. For a subtransaction the locks are inherited by the
// parent and the storage effects merge into it.
func (t *Txn) Commit() error {
	if t.readOnly {
		return t.finishReadOnly(Committed)
	}
	t.mu.Lock()
	if t.status != Active {
		t.mu.Unlock()
		return ErrFinished
	}
	t.mu.Unlock()

	m := t.mgr
	if t.parent == nil {
		// The preCommit signal may trigger deferred rules, which create
		// subtransactions; they must all be finished by the time the
		// listener returns.
		m.emit("preCommitTransaction", t.id)
	}

	t.mu.Lock()
	if t.children > 0 {
		t.mu.Unlock()
		return fmt.Errorf("%w: txn %d", ErrActiveChildren, t.id)
	}
	t.status = Committed
	finishers := t.takeFinishersLocked()
	t.mu.Unlock()

	if m.store != nil {
		if err := m.store.Commit(t.id); err != nil {
			t.mu.Lock()
			t.status = Active
			t.mu.Unlock()
			return err
		}
	}
	if t.parent != nil {
		m.locks.Inherit(lockmgr.TxnID(t.id), lockmgr.TxnID(t.parent.id))
		t.parent.childDone()
		m.subCommits.Add(1)
	} else {
		m.locks.ReleaseAll(lockmgr.TxnID(t.id))
		m.commits.Add(1)
		m.emit("commitTransaction", t.id)
	}
	m.forget(t.id)
	runFinishers(finishers, Committed)
	return nil
}

// Abort rolls the transaction back: its storage effects are undone, its
// locks released, and (for top-level transactions) abortTransaction is
// signalled so the event graph can be flushed.
func (t *Txn) Abort() error {
	if t.readOnly {
		return t.finishReadOnly(Aborted)
	}
	t.mu.Lock()
	if t.status != Active {
		t.mu.Unlock()
		return ErrFinished
	}
	if t.children > 0 {
		t.mu.Unlock()
		return fmt.Errorf("%w: txn %d", ErrActiveChildren, t.id)
	}
	t.status = Aborted
	finishers := t.takeFinishersLocked()
	t.mu.Unlock()

	m := t.mgr
	var storeErr error
	if m.store != nil {
		// A failed storage rollback must not leak locks: the transaction
		// is finished for every caller (status is already Aborted), so
		// keeping its locks would wedge every waiter forever. The log has
		// no abort record yet, so recovery completes the rollback on the
		// next open; here the error is reported after the lock state and
		// manager bookkeeping are cleaned up.
		storeErr = m.store.Abort(t.id)
	}
	m.locks.ReleaseAll(lockmgr.TxnID(t.id))
	if t.parent != nil {
		t.parent.childDone()
		m.subAborts.Add(1)
	} else {
		m.aborts.Add(1)
		m.emit("abortTransaction", t.id)
	}
	m.forget(t.id)
	runFinishers(finishers, Aborted)
	return storeErr
}

// finishReadOnly ends a snapshot transaction: close the snapshot (its
// versions become reclaimable), run finishers, forget. There is nothing to
// make durable, no locks to release, and no events to signal — commit and
// abort differ only in the status handed to the finishers.
func (t *Txn) finishReadOnly(st Status) error {
	t.mu.Lock()
	if t.status != Active {
		t.mu.Unlock()
		return ErrFinished
	}
	t.status = st
	finishers := t.takeFinishersLocked()
	t.mu.Unlock()
	if t.snap != nil {
		t.snap.Close()
	}
	t.mgr.forget(t.id)
	runFinishers(finishers, st)
	return nil
}

func (t *Txn) takeFinishersLocked() []func(Status) {
	f := t.onFinish
	t.onFinish = nil
	return f
}

func runFinishers(fs []func(Status), st Status) {
	for i := len(fs) - 1; i >= 0; i-- {
		fs[i](st)
	}
}

func (m *Manager) forget(id uint64) {
	m.mu.Lock()
	delete(m.live, id)
	m.mu.Unlock()
}

// Lookup returns the live transaction with the given id, or nil.
func (m *Manager) Lookup(id uint64) *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live[id]
}

// Live returns the number of unfinished transactions (tests).
func (m *Manager) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live)
}
