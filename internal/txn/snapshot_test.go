package txn

import (
	"errors"
	"testing"

	"repro/internal/lockmgr"
)

// TestSnapshotTxnZeroLocks is the acceptance check for the lock-free read
// path at the transaction layer: a snapshot transaction performs reads and
// even explicit Lock calls without the lock manager granting or queueing
// anything — every request is counted as a bypass — and every write
// operation is rejected with ErrReadOnly.
func TestSnapshotTxnZeroLocks(t *testing.T) {
	m := newMgr(t, true)

	w, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rid, err := w.Insert([]byte("committed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	grants0, waits0, _, _, bypass0 := m.Locks().Stats()

	sn, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !sn.ReadOnly() {
		t.Fatal("snapshot txn not marked read-only")
	}
	if sn.Snapshot() == nil {
		t.Fatal("snapshot txn has no storage snapshot")
	}
	for i := 0; i < 3; i++ {
		if got, err := sn.Read(rid); err != nil || string(got) != "committed" {
			t.Fatalf("snapshot read: %q, %v", got, err)
		}
		// An explicit lock request from a snapshot txn must be a counted
		// no-op, never a grant.
		if err := sn.Lock("obj-zero-lock", lockmgr.Shared); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sn.Insert([]byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert on snapshot txn: %v", err)
	}
	if _, err := sn.Update(rid, []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Update on snapshot txn: %v", err)
	}
	if err := sn.Delete(rid); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete on snapshot txn: %v", err)
	}
	if _, err := sn.BeginSub(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("BeginSub on snapshot txn: %v", err)
	}
	if err := sn.Commit(); err != nil {
		t.Fatal(err)
	}

	grants, waits, _, _, bypass := m.Locks().Stats()
	if grants != grants0 || waits != waits0 {
		t.Fatalf("snapshot txn touched the lock manager: grants %d->%d waits %d->%d",
			grants0, grants, waits0, waits)
	}
	if bypass <= bypass0 {
		t.Fatalf("lock bypasses not counted: %d -> %d", bypass0, bypass)
	}
}

// TestSnapshotTxnNotBlockedByWriter: a snapshot transaction reads the
// committed state from before a concurrent read-write transaction, even
// while that writer holds an exclusive lock on the record and has an
// uncommitted update in place — the situation that blocks a 2PL shared
// read for the writer's full commit latency.
func TestSnapshotTxnNotBlockedByWriter(t *testing.T) {
	m := newMgr(t, true)

	w, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rid, err := w.Insert([]byte("old"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	w2, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Lock("rec", lockmgr.Exclusive); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Update(rid, []byte("new")); err != nil {
		t.Fatal(err)
	}

	sn, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sn.Read(rid); err != nil || string(got) != "old" {
		t.Fatalf("snapshot read under writer's X lock: %q, %v", got, err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	// Repeatable: the snapshot keeps its pre-commit view.
	if got, err := sn.Read(rid); err != nil || string(got) != "old" {
		t.Fatalf("snapshot not repeatable across writer commit: %q, %v", got, err)
	}
	if err := sn.Commit(); err != nil {
		t.Fatal(err)
	}

	sn2, err := m.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sn2.Read(rid); err != nil || string(got) != "new" {
		t.Fatalf("fresh snapshot after commit: %q, %v", got, err)
	}
	if err := sn2.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestUseSnapshotScope: arming a snapshot on a read-write transaction
// turns its reads version-resolved and its lock requests into bypasses for
// exactly the armed scope; release restores normal 2PL behaviour.
func TestUseSnapshotScope(t *testing.T) {
	m := newMgr(t, true)

	w, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rid, err := w.Insert([]byte("base"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	rw, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Own uncommitted write must stay visible through the armed snapshot
	// (SnapshotFor includes the transaction family).
	if _, err := rw.Update(rid, []byte("mine")); err != nil {
		t.Fatal(err)
	}
	grants0, _, _, _, bypass0 := m.Locks().Stats()
	release, err := rw.UseSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if rw.Snapshot() == nil {
		t.Fatal("UseSnapshot did not arm a snapshot")
	}
	if err := rw.Lock("rec", lockmgr.Shared); err != nil {
		t.Fatal(err)
	}
	if got, err := rw.Read(rid); err != nil || string(got) != "mine" {
		t.Fatalf("armed read lost own write: %q, %v", got, err)
	}
	if _, err := rw.Update(rid, []byte("blocked")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write inside armed scope: %v", err)
	}
	release()
	if rw.Snapshot() != nil {
		t.Fatal("release did not disarm the snapshot")
	}
	grants1, _, _, _, bypass1 := m.Locks().Stats()
	if grants1 != grants0 {
		t.Fatalf("armed scope took real locks: grants %d -> %d", grants0, grants1)
	}
	if bypass1 <= bypass0 {
		t.Fatalf("armed lock request not counted as bypass: %d -> %d", bypass0, bypass1)
	}
	// Disarmed again: locks are real, writes work.
	if err := rw.Lock("rec", lockmgr.Shared); err != nil {
		t.Fatal(err)
	}
	if grants2, _, _, _, _ := m.Locks().Stats(); grants2 != grants1+1 {
		t.Fatalf("post-release lock not granted: %d -> %d", grants1, grants2)
	}
	if _, err := rw.Update(rid, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := rw.Commit(); err != nil {
		t.Fatal(err)
	}
}
