package txn

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lockmgr"
	"repro/internal/storage"
)

func newMgr(t *testing.T, withStore bool) *Manager {
	t.Helper()
	var store *storage.Store
	if withStore {
		var err error
		store, err = storage.Open(storage.Options{Dir: t.TempDir(), PoolSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
	}
	return NewManager(store, lockmgr.New())
}

func TestStatusString(t *testing.T) {
	if Active.String() != "active" || Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Fatal("status strings wrong")
	}
	if !strings.Contains(Status(9).String(), "9") {
		t.Fatal("unknown status string")
	}
}

func TestTransactionEventsEmitted(t *testing.T) {
	m := newMgr(t, false)
	var mu sync.Mutex
	var got []string
	m.SetListener(func(name string, id uint64) {
		mu.Lock()
		got = append(got, name)
		mu.Unlock()
	})
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := []string{"beginTransaction", "preCommitTransaction", "commitTransaction"}
	if len(got) != len(want) {
		t.Fatalf("events=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events=%v want %v", got, want)
		}
	}

	got = nil
	tx2, _ := m.Begin()
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != "abortTransaction" {
		t.Fatalf("abort events=%v", got)
	}
}

func TestPreCommitRunsBeforeCommit(t *testing.T) {
	// The listener can still create and run a subtransaction during
	// preCommit — exactly what deferred rule execution does.
	m := newMgr(t, true)
	var subRan bool
	var txPtr *Txn
	m.SetListener(func(name string, id uint64) {
		if name == "preCommitTransaction" {
			sub, err := txPtr.BeginSub()
			if err != nil {
				t.Errorf("BeginSub during preCommit: %v", err)
				return
			}
			if _, err := sub.Insert([]byte("deferred-write")); err != nil {
				t.Errorf("Insert in deferred sub: %v", err)
			}
			if err := sub.Commit(); err != nil {
				t.Errorf("sub.Commit: %v", err)
			}
			subRan = true
		}
	})
	tx, _ := m.Begin()
	txPtr = tx
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !subRan {
		t.Fatal("preCommit hook never ran")
	}
}

func TestNestedHierarchy(t *testing.T) {
	m := newMgr(t, false)
	top, _ := m.Begin()
	if top.IsNested() || top.Depth() != 0 || top.Root() != top {
		t.Fatal("top-level misclassified")
	}
	sub, err := top.BeginSub()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := sub.BeginSub()
	if err != nil {
		t.Fatal(err)
	}
	if !leaf.IsNested() || leaf.Depth() != 2 || leaf.Root() != top {
		t.Fatalf("leaf: nested=%v depth=%d", leaf.IsNested(), leaf.Depth())
	}
	if err := leaf.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := top.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Live() != 0 {
		t.Fatalf("Live=%d", m.Live())
	}
}

func TestCommitWithActiveChildRejected(t *testing.T) {
	m := newMgr(t, false)
	top, _ := m.Begin()
	sub, _ := top.BeginSub()
	if err := top.Commit(); !errors.Is(err, ErrActiveChildren) {
		t.Fatalf("want ErrActiveChildren, got %v", err)
	}
	if err := sub.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := top.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFinishRejected(t *testing.T) {
	m := newMgr(t, false)
	tx, _ := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrFinished) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrFinished) {
		t.Fatalf("abort after commit: %v", err)
	}
	if _, err := tx.BeginSub(); !errors.Is(err, ErrFinished) {
		t.Fatalf("BeginSub after commit: %v", err)
	}
}

func TestSubtxnLockInheritance(t *testing.T) {
	m := newMgr(t, false)
	top, _ := m.Begin()
	sub, _ := top.BeginSub()
	if err := sub.Lock("obj-1", lockmgr.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := sub.Commit(); err != nil {
		t.Fatal(err)
	}
	holders := m.Locks().Holders("obj-1")
	if holders[lockmgr.TxnID(top.ID())] != lockmgr.Exclusive {
		t.Fatalf("parent did not inherit lock: %v", holders)
	}
	// Released at top-level commit.
	if err := top.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(m.Locks().Holders("obj-1")) != 0 {
		t.Fatal("locks survived top-level commit")
	}
}

func TestSubtxnAbortReleasesLocks(t *testing.T) {
	m := newMgr(t, false)
	m.Locks().DefaultTimeout = 100 * time.Millisecond
	top, _ := m.Begin()
	sub, _ := top.BeginSub()
	if err := sub.Lock("obj-2", lockmgr.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := sub.Abort(); err != nil {
		t.Fatal(err)
	}
	other, _ := m.Begin()
	if err := other.Lock("obj-2", lockmgr.Exclusive); err != nil {
		t.Fatalf("lock not released on subtxn abort: %v", err)
	}
	_ = other.Abort()
	_ = top.Abort()
}

func TestStorageIntegrationCommitAbort(t *testing.T) {
	m := newMgr(t, true)
	tx, _ := m.Begin()
	rid, err := tx.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := tx.Read(rid); err != nil || string(got) != "hello" {
		t.Fatalf("Read=%q err=%v", got, err)
	}
	if _, err := tx.Update(rid, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := m.Begin()
	if err := tx2.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	tx3, _ := m.Begin()
	if got, err := tx3.Read(rid); err != nil || string(got) != "world" {
		t.Fatalf("after abort Read=%q err=%v", got, err)
	}
	_ = tx3.Commit()
}

func TestOnFinishCallbacks(t *testing.T) {
	m := newMgr(t, false)
	tx, _ := m.Begin()
	var order []string
	tx.OnFinish(func(s Status) { order = append(order, "first:"+s.String()) })
	tx.OnFinish(func(s Status) { order = append(order, "second:"+s.String()) })
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Newest-first (LIFO), like defer.
	if len(order) != 2 || order[0] != "second:committed" || order[1] != "first:committed" {
		t.Fatalf("order=%v", order)
	}
}

func TestStorelessSubtxnOps(t *testing.T) {
	m := newMgr(t, false)
	tx, _ := m.Begin()
	if _, err := tx.Insert([]byte("x")); err == nil {
		t.Fatal("Insert without store should fail")
	}
	if _, err := tx.Read(storage.RID{}); err == nil {
		t.Fatal("Read without store should fail")
	}
	if _, err := tx.Update(storage.RID{}, nil); err == nil {
		t.Fatal("Update without store should fail")
	}
	if err := tx.Delete(storage.RID{}); err == nil {
		t.Fatal("Delete without store should fail")
	}
	_ = tx.Abort()
}

func TestConcurrentSubtransactions(t *testing.T) {
	m := newMgr(t, true)
	top, _ := m.Begin()
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := top.BeginSub()
			if err != nil {
				errs <- err
				return
			}
			if _, err := sub.Insert([]byte{byte(i)}); err != nil {
				errs <- err
				return
			}
			if i%2 == 0 {
				errs <- sub.Commit()
			} else {
				errs <- sub.Abort()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := top.Commit(); err != nil {
		t.Fatal(err)
	}
}
