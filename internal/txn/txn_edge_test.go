package txn

import (
	"errors"
	"testing"

	"repro/internal/lockmgr"
	"repro/internal/storage"
)

func TestFamilyIDsTracksSubtransactions(t *testing.T) {
	m := newMgr(t, false)
	top, _ := m.Begin()
	if ids := top.FamilyIDs(); len(ids) != 1 || ids[0] != top.ID() {
		t.Fatalf("fresh family: %v", ids)
	}
	sub, _ := top.BeginSub()
	leaf, _ := sub.BeginSub()
	ids := top.FamilyIDs()
	if len(ids) != 3 {
		t.Fatalf("family: %v", ids)
	}
	// The family includes finished subtransactions (their occurrences
	// still need flushing at top-level end).
	_ = leaf.Commit()
	_ = sub.Abort()
	if got := top.FamilyIDs(); len(got) != 3 {
		t.Fatalf("family after children finished: %v", got)
	}
	// A child's FamilyIDs is the root's.
	sub2, _ := top.BeginSub()
	if got := sub2.FamilyIDs(); len(got) != 4 {
		t.Fatalf("family from child: %v", got)
	}
	_ = sub2.Abort()
	_ = top.Commit()
}

func TestAbortWithActiveChildrenRejected(t *testing.T) {
	m := newMgr(t, false)
	top, _ := m.Begin()
	sub, _ := top.BeginSub()
	if err := top.Abort(); !errors.Is(err, ErrActiveChildren) {
		t.Fatalf("abort with child: %v", err)
	}
	_ = sub.Commit()
	if err := top.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestSubtxnStorageRollbackViaManager(t *testing.T) {
	m := newMgr(t, true)
	top, _ := m.Begin()
	keep, err := top.Insert([]byte("keep"))
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := top.BeginSub()
	lost, err := sub.Insert([]byte("lost"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := top.Read(lost); err == nil {
		t.Fatal("aborted subtxn write visible")
	}
	if got, err := top.Read(keep); err != nil || string(got) != "keep" {
		t.Fatalf("parent write damaged: %q %v", got, err)
	}
	if err := top.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestListenerNilSafe(t *testing.T) {
	m := newMgr(t, false)
	m.SetListener(nil) // resets to no-op, must not panic
	tx, _ := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLookupLiveAndGone(t *testing.T) {
	m := newMgr(t, false)
	tx, _ := m.Begin()
	if m.Lookup(tx.ID()) != tx {
		t.Fatal("Lookup missed live txn")
	}
	_ = tx.Commit()
	if m.Lookup(tx.ID()) != nil {
		t.Fatal("Lookup found finished txn")
	}
	if m.Lookup(99999) != nil {
		t.Fatal("Lookup invented a txn")
	}
}

func TestStatusAccessors(t *testing.T) {
	m := newMgr(t, false)
	tx, _ := m.Begin()
	if tx.Status() != Active {
		t.Fatalf("Status=%v", tx.Status())
	}
	_ = tx.Commit()
	if tx.Status() != Committed {
		t.Fatalf("Status=%v", tx.Status())
	}
	tx2, _ := m.Begin()
	_ = tx2.Abort()
	if tx2.Status() != Aborted {
		t.Fatalf("Status=%v", tx2.Status())
	}
}

func TestOnFinishRunsOnAbort(t *testing.T) {
	m := newMgr(t, false)
	tx, _ := m.Begin()
	var got Status
	tx.OnFinish(func(s Status) { got = s })
	_ = tx.Abort()
	if got != Aborted {
		t.Fatalf("OnFinish status=%v", got)
	}
}

func TestBeginSubAfterStoreClosed(t *testing.T) {
	st, err := storage.Open(storage.Options{Dir: t.TempDir(), PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(st, lockmgr.New())
	top, _ := m.Begin()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := top.BeginSub(); err == nil {
		t.Fatal("BeginSub after store close succeeded")
	}
	// The failed BeginSub must not leave a phantom child blocking commit.
	top.mu.Lock()
	children := top.children
	top.mu.Unlock()
	if children != 0 {
		t.Fatalf("phantom children: %d", children)
	}
}
