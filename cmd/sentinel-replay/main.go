// Command sentinel-replay performs batch (after-the-fact) composite event
// detection: it compiles an event specification, replays a stored event
// log through the detector, and reports every composite detection — the
// paper's "batch mode" of the local composite event detector.
//
// Usage:
//
//	sentinel-replay -spec events.snp -log events.bin [-context CHRONICLE] [-watch e4,e5]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/snoop"
)

func main() {
	specPath := flag.String("spec", "", "Sentinel event specification file")
	logPath := flag.String("log", "", "event log file (written by detector.EventLog)")
	ctxName := flag.String("context", "CHRONICLE", "parameter context for detection")
	watch := flag.String("watch", "", "comma-separated event names to watch (default: all composites)")
	flag.Parse()
	if *specPath == "" || *logPath == "" {
		fmt.Fprintln(os.Stderr, "usage: sentinel-replay -spec events.snp -log events.bin")
		os.Exit(2)
	}
	src, err := os.ReadFile(*specPath)
	if err != nil {
		fail(err)
	}
	ctx, err := detector.ParseContext(*ctxName)
	if err != nil {
		fail(err)
	}
	det := detector.New()
	det.AutoFlush = false // batch analysis often spans transactions
	comp := &snoop.Compiler{Det: det, Resolve: func(string) (event.OID, error) { return 0, nil }}
	if err := comp.CompileSource(string(src)); err != nil {
		fail(err)
	}

	var names []string
	if *watch != "" {
		names = strings.Split(*watch, ",")
	} else {
		// Composite events only, one name per graph node (an event name
		// declared with "event x = ..." aliases its canonical expression
		// node; prefer the user-declared name, which is the shorter one).
		best := map[detector.Node]string{}
		all := det.Events()
		sort.Strings(all)
		for _, n := range all {
			node, _ := det.Lookup(n)
			if len(node.Kids()) == 0 {
				continue
			}
			if cur, ok := best[node]; !ok || len(n) < len(cur) {
				best[node] = n
			}
		}
		for _, n := range best {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	total := 0
	for _, n := range names {
		name := n
		_, err := det.Subscribe(name, ctx, detector.SubscriberFunc(
			func(occ *event.Occurrence, _ detector.Context) {
				total++
				fmt.Printf("%s: %s\n", name, occ)
			}))
		if err != nil {
			fail(err)
		}
	}
	replayed, err := detector.ReplayFile(*logPath, det)
	if err != nil {
		fail(err)
	}
	fmt.Printf("replayed %d occurrences, %d detections in %s context\n", replayed, total, ctx)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sentinel-replay:", err)
	os.Exit(1)
}
