// Command gedserver runs a standalone global event detector: applications
// connect, contribute local primitive events, and subscribe to global
// composite events defined by the spec file.
//
// Usage:
//
//	gedserver -listen 127.0.0.1:7070 [-spec global.snp]
//
// The spec file may declare composite events over the (explicit) event
// names applications contribute, e.g.:
//
//	event e1 = e1_decl; ...
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/ged"
	"repro/internal/snoop"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to listen on")
	spec := flag.String("spec", "", "Sentinel spec file with global event definitions")
	flag.Parse()

	server := ged.NewServer(nil)
	if *spec != "" {
		src, err := os.ReadFile(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gedserver:", err)
			os.Exit(1)
		}
		comp := &snoop.Compiler{Det: server.Det}
		if err := comp.CompileSource(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "gedserver:", err)
			os.Exit(1)
		}
	}
	addr, err := server.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gedserver:", err)
		os.Exit(1)
	}
	fmt.Println("gedserver listening on", addr)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Println("gedserver shutting down")
	_ = server.Close()
}
