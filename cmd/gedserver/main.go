// Command gedserver runs a standalone global event detector: applications
// connect over the framed binary wire protocol, contribute local
// primitive events, and subscribe to global composite events defined by
// the spec file — or stream the durable contribution log from any offset.
//
// Usage:
//
//	gedserver -listen 127.0.0.1:7070 [-spec global.snp] [-log dir]
//	          [-log-sync] [-segment-bytes n] [-queue n] [-drain 2s]
//	          [-partition i/n] [-debug 127.0.0.1:7071]
//
// The spec file may declare composite events over the (explicit) event
// names applications contribute, e.g.:
//
//	event e1 = e1_decl; ...
//
// With -log set, every contribution is appended to a segmented,
// CRC-checksummed log under that directory before detection, and clients
// can replay it from any offset (at-least-once delivery). -log-sync adds
// an fsync per append batch.
//
// With -partition i/n the server announces itself as slot i of an
// n-instance deployment; clients using ged.DialCluster route event names
// to slots with ged.PartitionOf.
//
// With -debug set, an HTTP server on that address serves /metrics
// (Prometheus text format: detector and wire/log/backpressure metrics)
// and /debugz (metrics snapshot plus the global event graph in DOT form).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/debug"
	"repro/internal/ged"
	"repro/internal/obs"
	"repro/internal/snoop"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to listen on")
	spec := flag.String("spec", "", "Sentinel spec file with global event definitions")
	logDir := flag.String("log", "", "directory for the durable contribution log (off when empty)")
	logSync := flag.Bool("log-sync", false, "fsync the contribution log after every append batch")
	segBytes := flag.Int64("segment-bytes", 0, "log segment roll size in bytes (0 = default 8 MiB)")
	queue := flag.Int("queue", 0, "per-connection send queue capacity in frames (0 = default 256)")
	drain := flag.Duration("drain", 2*time.Second, "shutdown drain deadline per connection")
	partition := flag.String("partition", "", "this instance's slot as i/n, e.g. 0/4 (standalone when empty)")
	debugAddr := flag.String("debug", "", "address for the /metrics and /debugz HTTP endpoints (off when empty)")
	flag.Parse()

	opts := ged.Options{
		LogDir:          *logDir,
		LogSegmentBytes: *segBytes,
		LogSync:         *logSync,
		SendQueue:       *queue,
		DrainTimeout:    *drain,
	}
	if *partition != "" {
		var i, n int
		if _, err := fmt.Sscanf(*partition, "%d/%d", &i, &n); err != nil || n < 1 || i < 0 || i >= n {
			fmt.Fprintf(os.Stderr, "gedserver: -partition must be i/n with 0 <= i < n, got %q\n", *partition)
			os.Exit(1)
		}
		opts.Partition, opts.Partitions = i, n
	}
	server, err := ged.NewServerOptions(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gedserver:", err)
		os.Exit(1)
	}
	if *spec != "" {
		src, err := os.ReadFile(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gedserver:", err)
			os.Exit(1)
		}
		comp := &snoop.Compiler{Det: server.Det}
		if err := comp.CompileSource(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "gedserver:", err)
			os.Exit(1)
		}
	}
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		server.Det.RegisterMetrics(reg)
		server.RegisterMetrics(reg)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.MetricsHandler())
		mux.Handle("/debugz", reg.DebugzHandler(obs.DebugzSection{
			Title:  "event graph (DOT)",
			Render: func(w io.Writer) error { return debug.DOT(server.Det, w) },
		}))
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "gedserver: debug server:", err)
			}
		}()
		fmt.Println("gedserver debug endpoints on", *debugAddr)
	}
	addr, err := server.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gedserver:", err)
		os.Exit(1)
	}
	fmt.Println("gedserver listening on", addr)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("gedserver shutting down")
	if err := server.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "gedserver:", err)
		os.Exit(1)
	}
	fmt.Println("gedserver shutdown clean")
}
