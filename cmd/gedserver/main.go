// Command gedserver runs a standalone global event detector: applications
// connect, contribute local primitive events, and subscribe to global
// composite events defined by the spec file.
//
// Usage:
//
//	gedserver -listen 127.0.0.1:7070 [-spec global.snp] [-debug 127.0.0.1:7071]
//
// The spec file may declare composite events over the (explicit) event
// names applications contribute, e.g.:
//
//	event e1 = e1_decl; ...
//
// With -debug set, an HTTP server on that address serves /metrics
// (Prometheus text format) and /debugz (metrics snapshot plus the global
// event graph in DOT form).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/debug"
	"repro/internal/ged"
	"repro/internal/obs"
	"repro/internal/snoop"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to listen on")
	spec := flag.String("spec", "", "Sentinel spec file with global event definitions")
	debugAddr := flag.String("debug", "", "address for the /metrics and /debugz HTTP endpoints (off when empty)")
	flag.Parse()

	server := ged.NewServer(nil)
	if *spec != "" {
		src, err := os.ReadFile(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gedserver:", err)
			os.Exit(1)
		}
		comp := &snoop.Compiler{Det: server.Det}
		if err := comp.CompileSource(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "gedserver:", err)
			os.Exit(1)
		}
	}
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		server.Det.RegisterMetrics(reg)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.MetricsHandler())
		mux.Handle("/debugz", reg.DebugzHandler(obs.DebugzSection{
			Title:  "event graph (DOT)",
			Render: func(w io.Writer) error { return debug.DOT(server.Det, w) },
		}))
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "gedserver: debug server:", err)
			}
		}()
		fmt.Println("gedserver debug endpoints on", *debugAddr)
	}
	addr, err := server.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gedserver:", err)
		os.Exit(1)
	}
	fmt.Println("gedserver listening on", addr)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Println("gedserver shutting down")
	_ = server.Close()
}
