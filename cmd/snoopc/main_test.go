package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runSpec writes src to a temp spec file and runs snoopc over it.
func runSpec(t *testing.T, src string, extraArgs ...string) (code int, stdout, stderr string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.snp")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code = run(append(extraArgs, path), &out, &errb)
	return code, out.String(), errb.String()
}

func TestGoldenBulkCompile(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-bulk", filepath.Join("testdata", "bulk.snp")}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	goldenPath := filepath.Join("testdata", "bulk.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

func TestBulkMatchesSequentialEvents(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "bulk.snp"))
	if err != nil {
		t.Fatal(err)
	}
	codeSeq, outSeq, errSeq := runSpec(t, string(src))
	codeBulk, outBulk, errBulk := runSpec(t, string(src), "-bulk")
	if codeSeq != 0 || codeBulk != 0 {
		t.Fatalf("exits: seq=%d (%s) bulk=%d (%s)", codeSeq, errSeq, codeBulk, errBulk)
	}
	// Bulk output is the sequential output plus the sharing summary line.
	if !strings.HasPrefix(outBulk, outSeq) {
		t.Errorf("bulk and sequential compilation disagree:\n--- seq ---\n%s--- bulk ---\n%s", outSeq, outBulk)
	}
	tail := strings.TrimPrefix(outBulk, outSeq)
	if !strings.Contains(tail, "shared") {
		t.Errorf("bulk summary line missing, got %q", tail)
	}
}

func TestUnresolvableInstanceName(t *testing.T) {
	src := `
class STOCK reactive { event end(priced) set_price(price); }
event ibm = end STOCK("IBM").set_price(price);
`
	// Without -instances every name is auto-interned: must compile.
	if code, _, stderr := runSpec(t, src); code != 0 {
		t.Fatalf("auto-interned instance failed: %s", stderr)
	}
	// With an explicit binding table, unlisted names are errors.
	code, _, stderr := runSpec(t, src, "-instances", "DEC=7")
	if code != 1 || !strings.Contains(stderr, `"IBM"`) {
		t.Fatalf("unresolvable instance: exit=%d stderr=%q", code, stderr)
	}
	// And listed ones resolve.
	if code, _, stderr := runSpec(t, src, "-instances", "IBM=42"); code != 0 {
		t.Fatalf("bound instance failed: %s", stderr)
	}
	// Malformed binding tables are usage errors.
	if code, _, _ := runSpec(t, src, "-instances", "IBM"); code != 2 {
		t.Fatalf("malformed -instances accepted: exit=%d", code)
	}
	if code, _, _ := runSpec(t, src, "-instances", "IBM=notanumber"); code != 2 {
		t.Fatalf("non-numeric OID accepted: exit=%d", code)
	}
}

func TestUnknownOperatorRejected(t *testing.T) {
	for _, src := range []string{
		"event e = a xor b;",
		"event e = nand(a, b);",
	} {
		code, _, stderr := runSpec(t, "class C reactive { event end(a) m(); event end(b) n(); }\n"+src)
		if code != 1 {
			t.Errorf("%q: exit=%d stderr=%q", src, code, stderr)
		}
	}
}

func TestConflictingDuplicateEventDeclaration(t *testing.T) {
	src := `
class C reactive { event end(e1) pay(amount); }
class D reactive { event end(e1) refund(amount); }
`
	for _, args := range [][]string{nil, {"-bulk"}} {
		code, _, stderr := runSpec(t, src, args...)
		if code != 1 || !strings.Contains(stderr, "e1") {
			t.Errorf("args=%v: exit=%d stderr=%q", args, code, stderr)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit=%d", code)
	}
	if code := run([]string{"does-not-exist.snp"}, &out, &errb); code != 1 {
		t.Fatalf("missing file: exit=%d", code)
	}
}
