// Command snoopc compiles a Sentinel event/rule specification, reports
// the events and rules it declares, and optionally emits the resulting
// event graph in Graphviz DOT form — the inspection half of the Sentinel
// pre-processor.
//
// Usage:
//
//	snoopc [-dot] spec.snp
//
// Rules are checked for syntax but their condition/action functions are
// only name-checked (bodies live in application code).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/debug"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/snoop"
)

func main() {
	dot := flag.Bool("dot", false, "emit the event graph as Graphviz DOT on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: snoopc [-dot] spec.snp\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "snoopc:", err)
		os.Exit(1)
	}
	decls, err := snoop.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "snoopc:", err)
		os.Exit(1)
	}

	det := detector.New()
	comp := &snoop.Compiler{
		Det: det,
		// Instance names cannot be resolved without a database; map them
		// all to a placeholder OID so the graph still builds.
		Resolve: func(string) (event.OID, error) { return 1, nil },
	}
	var ruleCount int
	printRule := func(d *snoop.RuleDecl) {
		ruleCount++
		scope := ""
		if d.Class != "" {
			scope = fmt.Sprintf(" %s in class %s", orDefault(d.Visibility, "PUBLIC"), d.Class)
		}
		fmt.Printf("rule  %-20s on %s (context=%s coupling=%s priority=%d trigger=%s)%s\n",
			d.Name, d.Event,
			orDefault(d.Context, "RECENT"), orDefault(d.Coupling, "IMMEDIATE"),
			d.Priority, orDefault(d.Trigger, "NOW"), scope)
	}
	for _, d := range decls {
		switch d := d.(type) {
		case *snoop.RuleDecl:
			printRule(d)
		default:
			if cd, ok := d.(*snoop.ClassDecl); ok {
				for _, r := range cd.Rules {
					printRule(r)
				}
			}
			if err := comp.Compile([]snoop.Decl{d}); err != nil {
				fmt.Fprintln(os.Stderr, "snoopc:", err)
				os.Exit(1)
			}
		}
	}
	names := det.Events()
	sort.Strings(names)
	for _, n := range names {
		node, _ := det.Lookup(n)
		kind := "composite"
		if len(node.Kids()) == 0 {
			kind = "primitive"
		}
		fmt.Printf("event %-40s %s\n", n, kind)
	}
	fmt.Printf("%d events, %d rules\n", len(names), ruleCount)
	if *dot {
		if err := debug.DOT(det, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "snoopc:", err)
			os.Exit(1)
		}
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
