// Command snoopc compiles a Sentinel event/rule specification, reports
// the events and rules it declares, and optionally emits the resulting
// event graph in Graphviz DOT form — the inspection half of the Sentinel
// pre-processor.
//
// Usage:
//
//	snoopc [-dot] [-bulk] [-instances NAME=OID,...] spec.snp
//
// Rules are checked for syntax but their condition/action functions are
// only name-checked (bodies live in application code). With -bulk the
// whole specification is built in one detector lock window (the path a
// database takes for LoadRules) and the subexpression-sharing count is
// reported. With -instances, instance-level events resolve only the
// listed names; otherwise every instance name is assigned a placeholder
// OID so the graph still builds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/debug"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/snoop"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snoopc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dot := fs.Bool("dot", false, "emit the event graph as Graphviz DOT on stdout")
	bulk := fs.Bool("bulk", false, "compile the whole specification in one detector lock window")
	instances := fs.String("instances", "", "comma-separated NAME=OID bindings for instance-level events (unlisted names become errors)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: snoopc [-dot] [-bulk] [-instances NAME=OID,...] spec.snp\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "snoopc:", err)
		return 1
	}
	decls, err := snoop.Parse(string(src))
	if err != nil {
		fmt.Fprintln(stderr, "snoopc:", err)
		return 1
	}

	resolve, err := makeResolver(*instances)
	if err != nil {
		fmt.Fprintln(stderr, "snoopc:", err)
		return 2
	}
	det := detector.New()
	comp := &snoop.Compiler{Det: det, Resolve: resolve}
	var ruleCount int
	printRule := func(d *snoop.RuleDecl) {
		ruleCount++
		scope := ""
		if d.Class != "" {
			scope = fmt.Sprintf(" %s in class %s", orDefault(d.Visibility, "PUBLIC"), d.Class)
		}
		fmt.Fprintf(stdout, "rule  %-20s on %s (context=%s coupling=%s priority=%d trigger=%s)%s\n",
			d.Name, d.Event,
			orDefault(d.Context, "RECENT"), orDefault(d.Coupling, "IMMEDIATE"),
			d.Priority, orDefault(d.Trigger, "NOW"), scope)
	}
	// Rules are reported, not installed (snoopc has no rule manager); the
	// event side of every declaration is compiled.
	var compilable []snoop.Decl
	for _, d := range decls {
		switch d := d.(type) {
		case *snoop.RuleDecl:
			printRule(d)
		default:
			if cd, ok := d.(*snoop.ClassDecl); ok {
				for _, r := range cd.Rules {
					printRule(r)
				}
			}
			compilable = append(compilable, d)
		}
	}
	if *bulk {
		err = comp.CompileBulk(compilable)
	} else {
		err = comp.Compile(compilable)
	}
	if err != nil {
		fmt.Fprintln(stderr, "snoopc:", err)
		return 1
	}
	names := det.Events()
	sort.Strings(names)
	for _, n := range names {
		node, _ := det.Lookup(n)
		kind := "composite"
		if len(node.Kids()) == 0 {
			kind = "primitive"
		}
		fmt.Fprintf(stdout, "event %-40s %s\n", n, kind)
	}
	fmt.Fprintf(stdout, "%d events, %d rules\n", len(names), ruleCount)
	if *bulk {
		fmt.Fprintf(stdout, "%d node registrations shared, %d nodes live\n",
			det.SharedNodes(), det.LiveNodes())
	}
	if *dot {
		if err := debug.DOT(det, stdout); err != nil {
			fmt.Fprintln(stderr, "snoopc:", err)
			return 1
		}
	}
	return 0
}

// makeResolver builds the instance-name resolver: explicit NAME=OID
// bindings when given (unlisted names are unresolvable), otherwise each
// distinct name is interned to its own placeholder OID.
func makeResolver(bindings string) (func(string) (event.OID, error), error) {
	if bindings == "" {
		interned := map[string]event.OID{}
		return func(name string) (event.OID, error) {
			if oid, ok := interned[name]; ok {
				return oid, nil
			}
			oid := event.OID(len(interned) + 1)
			interned[name] = oid
			return oid, nil
		}, nil
	}
	bound := map[string]event.OID{}
	for _, pair := range strings.Split(bindings, ",") {
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad -instances binding %q (want NAME=OID)", pair)
		}
		oid, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad OID in -instances binding %q: %v", pair, err)
		}
		bound[name] = event.OID(oid)
	}
	return func(name string) (event.OID, error) {
		if oid, ok := bound[name]; ok {
			return oid, nil
		}
		return 0, fmt.Errorf("instance %q not bound (pass -instances %s=OID)", name, name)
	}, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
