// Command beast is the experiment driver: it re-runs the paper's
// functionality matrix (§2.3, features i–vi) as live checks and prints
// BEAST-style micro-measurements for the mechanisms the paper describes.
// EXPERIMENTS.md records these outputs against the paper's claims.
//
// Usage:
//
//	beast [-events N]
//	beast -ged addr [-conns N] [-events-per-conn N] [-subscribers N] [-debug addr]
//
// With -ged set, beast instead becomes a load driver for a gedserver
// instance: it opens -conns concurrent client connections, contributes
// -events-per-conn events on each, and verifies zero dropped contribute
// acks, live notify fan-out (reporting client-measured contribute-to-
// notify latency percentiles, also served on -debug /metrics), replay
// completeness for a subscriber joining after the fact, and at-least-
// once redelivery across an injected disconnect. Exits nonzero if any
// check fails.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	sentinel "repro"
	"repro/internal/detector"
	"repro/internal/event"
)

func main() {
	n := flag.Int("events", 100000, "events per micro-measurement")
	gedAddr := flag.String("ged", "", "GED server address: run the load-driver mode instead of the functionality matrix")
	conns := flag.Int("conns", 1000, "concurrent client connections (with -ged)")
	perConn := flag.Int("events-per-conn", 20, "events contributed per connection (with -ged)")
	nsubs := flag.Int("subscribers", 8, "live notify subscribers (with -ged)")
	debugAddr := flag.String("debug", "", "address to serve beast's own /metrics on (with -ged; off when empty)")
	flag.Parse()

	if *gedAddr != "" {
		os.Exit(runGED(*gedAddr, *conns, *perConn, *nsubs, *debugAddr))
	}

	fmt.Println("Sentinel reproduction — functionality matrix (paper §2.3)")
	fmt.Println()
	check("(i)   primitive event detection (begin/end, class & instance level)", checkPrimitive)
	check("(ii)  local composite event detection (Snoop operators)", checkComposite)
	check("(iii) parameter computation of composite events", checkParams)
	check("(iv)  detector separated from application (online & batch)", checkBatch)
	check("(v)   immediate and deferred coupling modes", checkCoupling)
	check("(vi)  prioritized and concurrent rule execution", checkScheduling)
	fmt.Println()

	fmt.Printf("Micro-measurements (%d events each)\n\n", *n)
	measure("primitive signal, 1 subscriber", *n, benchPrimitive)
	measure("primitive signal, no subscriber", *n, benchPrimitiveIdle)
	measure("SEQ detect (recent)", *n, func(n int) { benchSeq(n, detector.Recent) })
	measure("SEQ detect (chronicle)", *n, func(n int) { benchSeq(n, detector.Chronicle) })
	measure("SEQ detect (continuous)", *n, func(n int) { benchSeq(n, detector.Continuous) })
	measure("SEQ detect (cumulative)", *n, func(n int) { benchSeq(n, detector.Cumulative) })
	measure("rule execution (immediate, subtxn)", *n/10, benchRule)
}

func check(name string, fn func() error) {
	status := "PASS"
	if err := fn(); err != nil {
		status = "FAIL: " + err.Error()
	}
	fmt.Printf("  %-66s %s\n", name, status)
	if status != "PASS" {
		os.Exit(1)
	}
}

func measure(name string, n int, fn func(n int)) {
	start := time.Now()
	fn(n)
	el := time.Since(start)
	fmt.Printf("  %-40s %10.0f events/s  (%6.0f ns/event)\n",
		name, float64(n)/el.Seconds(), float64(el.Nanoseconds())/float64(n))
}

// --- functionality checks ----------------------------------------------------

func stockDB() (*sentinel.Database, error) {
	db, err := sentinel.Open(sentinel.Options{AppName: "beast", SerialRules: true})
	if err != nil {
		return nil, err
	}
	if err := db.Exec(`
class STOCK reactive {
    event end(e1) sell_stock(qty);
    event begin(e2) && end(e3) set_price(price);
}
event e4 = e1 and e2;
`); err != nil {
		return nil, err
	}
	c, err := db.Class("STOCK")
	if err != nil {
		return nil, err
	}
	c.DefineMethod(sentinel.Method{Name: "sell_stock", Params: []string{"qty"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) { return nil, nil }})
	c.DefineMethod(sentinel.Method{Name: "set_price", Params: []string{"price"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) { return nil, nil }})
	return db, nil
}

func checkPrimitive() error {
	db, err := stockDB()
	if err != nil {
		return err
	}
	defer db.Close()
	var fired int
	db.BindAction("a", func(*sentinel.Execution) error { fired++; return nil })
	if err := db.Exec(`rule R(e1, true, a);`); err != nil {
		return err
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", nil)
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		return err
	}
	_ = tx.Commit()
	if fired != 1 {
		return fmt.Errorf("rule fired %d times", fired)
	}
	return nil
}

func checkComposite() error {
	db, err := stockDB()
	if err != nil {
		return err
	}
	defer db.Close()
	var fired int
	db.BindAction("a", func(*sentinel.Execution) error { fired++; return nil })
	if err := db.Exec(`rule R(e4, true, a);`); err != nil {
		return err
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", nil)
	_, _ = db.Invoke(tx, obj, "set_price", 1.0)
	_, _ = db.Invoke(tx, obj, "sell_stock", 1)
	_ = tx.Commit()
	if fired != 1 {
		return fmt.Errorf("composite fired %d times", fired)
	}
	return nil
}

func checkParams() error {
	db, err := stockDB()
	if err != nil {
		return err
	}
	defer db.Close()
	var lists int
	db.BindAction("a", func(x *sentinel.Execution) error { lists = len(x.Params()); return nil })
	if err := db.Exec(`rule R(e4, true, a);`); err != nil {
		return err
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", nil)
	_, _ = db.Invoke(tx, obj, "set_price", 1.0)
	_, _ = db.Invoke(tx, obj, "sell_stock", 1)
	_ = tx.Commit()
	if lists != 2 {
		return fmt.Errorf("composite carried %d parameter lists", lists)
	}
	return nil
}

func checkBatch() error {
	// Online detection recorded to a log, replayed in batch: counts match.
	var buf bytes.Buffer
	online := detector.New()
	online.DeclareClass("C", "")
	e1, _ := online.DefinePrimitive("p1", "C", "m1", event.End, 0)
	e2, _ := online.DefinePrimitive("p2", "C", "m2", event.End, 0)
	if _, err := online.Seq("s", e1, e2); err != nil {
		return err
	}
	onCount := 0
	if _, err := online.Subscribe("s", detector.Chronicle,
		detector.SubscriberFunc(func(*event.Occurrence, detector.Context) { onCount++ })); err != nil {
		return err
	}
	log := detector.NewEventLog(&buf)
	online.SetTracer(log.Recorder())
	for i := 0; i < 100; i++ {
		online.SignalMethod("C", fmt.Sprintf("m%d", i%2+1), event.End, 1, nil, 1)
	}

	batch := detector.New()
	batch.DeclareClass("C", "")
	f1, _ := batch.DefinePrimitive("p1", "C", "m1", event.End, 0)
	f2, _ := batch.DefinePrimitive("p2", "C", "m2", event.End, 0)
	if _, err := batch.Seq("s", f1, f2); err != nil {
		return err
	}
	offCount := 0
	if _, err := batch.Subscribe("s", detector.Chronicle,
		detector.SubscriberFunc(func(*event.Occurrence, detector.Context) { offCount++ })); err != nil {
		return err
	}
	if _, err := detector.Replay(bytes.NewReader(buf.Bytes()), batch); err != nil {
		return err
	}
	if onCount != offCount || onCount == 0 {
		return fmt.Errorf("online=%d batch=%d", onCount, offCount)
	}
	return nil
}

func checkCoupling() error {
	db, err := stockDB()
	if err != nil {
		return err
	}
	defer db.Close()
	var immediate, deferred int
	db.BindAction("imm", func(*sentinel.Execution) error { immediate++; return nil })
	db.BindAction("def", func(*sentinel.Execution) error { deferred++; return nil })
	if err := db.Exec(`
rule RI(e1, true, imm);
rule RD(e1, true, def, CUMULATIVE, DEFERRED);
`); err != nil {
		return err
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", nil)
	for i := 0; i < 3; i++ {
		_, _ = db.Invoke(tx, obj, "sell_stock", 1)
	}
	if immediate != 3 || deferred != 0 {
		return fmt.Errorf("before commit: imm=%d def=%d", immediate, deferred)
	}
	_ = tx.Commit()
	if deferred != 1 {
		return fmt.Errorf("after commit: def=%d", deferred)
	}
	return nil
}

func checkScheduling() error {
	db, err := stockDB()
	if err != nil {
		return err
	}
	defer db.Close()
	var order []int
	for _, prio := range []int{1, 9, 5} {
		p := prio
		name := fmt.Sprintf("a%d", p)
		db.BindAction(name, func(*sentinel.Execution) error { order = append(order, p); return nil })
		if err := db.Exec(fmt.Sprintf(`rule R%d(e1, true, %s, RECENT, IMMEDIATE, %d);`, p, name, p)); err != nil {
			return err
		}
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", nil)
	_, _ = db.Invoke(tx, obj, "sell_stock", 1)
	_ = tx.Commit()
	if len(order) != 3 || order[0] != 9 || order[1] != 5 || order[2] != 1 {
		return fmt.Errorf("priority order %v", order)
	}
	return nil
}

// --- micro-measurements --------------------------------------------------------

func benchPrimitive(n int) {
	d := detector.New()
	d.AutoFlush = false
	d.DeclareClass("C", "")
	if _, err := d.DefinePrimitive("e", "C", "m", event.End, 0); err != nil {
		panic(err)
	}
	if _, err := d.Subscribe("e", detector.Recent,
		detector.SubscriberFunc(func(*event.Occurrence, detector.Context) {})); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		d.SignalMethod("C", "m", event.End, 1, nil, 1)
	}
}

func benchPrimitiveIdle(n int) {
	d := detector.New()
	d.AutoFlush = false
	d.DeclareClass("C", "")
	if _, err := d.DefinePrimitive("e", "C", "m", event.End, 0); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		d.SignalMethod("C", "m", event.End, 1, nil, 1)
	}
}

func benchSeq(n int, ctx detector.Context) {
	d := detector.New()
	d.AutoFlush = false
	d.DeclareClass("C", "")
	e1, _ := d.DefinePrimitive("e1", "C", "m1", event.End, 0)
	e2, _ := d.DefinePrimitive("e2", "C", "m2", event.End, 0)
	if _, err := d.Seq("s", e1, e2); err != nil {
		panic(err)
	}
	if _, err := d.Subscribe("s", ctx,
		detector.SubscriberFunc(func(*event.Occurrence, detector.Context) {})); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		m := "m1"
		if i%3 == 2 {
			m = "m2"
		}
		d.SignalMethod("C", m, event.End, 1, nil, 1)
	}
}

func benchRule(n int) {
	db, err := stockDB()
	if err != nil {
		panic(err)
	}
	defer db.Close()
	db.BindAction("a", func(*sentinel.Execution) error { return nil })
	if err := db.Exec(`rule R(e1, true, a);`); err != nil {
		panic(err)
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", nil)
	for i := 0; i < n; i++ {
		if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
			panic(err)
		}
	}
	_ = tx.Commit()
}
