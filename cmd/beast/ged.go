package main

import (
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/ged"
	"repro/internal/obs"
)

// runGED is beast's GED load-driver mode: it drives many concurrent
// client connections against one gedserver and checks the production
// properties the bus promises — zero dropped contribute acks, live
// notify fan-out with client-measured latency, replay-from-offset-0
// completeness for a late joiner, and at-least-once redelivery across an
// injected disconnect. Returns the process exit code.
func runGED(addr string, conns, perConn, nsubs int, debugAddr string) int {
	total := conns * perConn
	fmt.Printf("GED load driver: %s, %d connections x %d events = %d contributions, %d live subscribers\n\n",
		addr, conns, perConn, total, nsubs)

	reg := obs.NewRegistry()
	lat := obs.NewHistogram(obs.DurationBuckets())
	reg.RegisterHistogram("beast_ged_notify_latency_seconds",
		"Client-side contribute-to-notify latency.", lat)
	var notifies atomic.Int64
	reg.CounterFunc("beast_ged_notifies_total",
		"Live notifications received across all subscribers.",
		func() uint64 { return uint64(notifies.Load()) })
	if debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.MetricsHandler())
		go func() {
			if err := http.ListenAndServe(debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "beast: debug server:", err)
			}
		}()
		fmt.Println("beast metrics on", debugAddr)
	}

	var (
		sampleMu sync.Mutex
		samples  []float64
	)
	onNotify := func(occ *event.Occurrence, _ detector.Context) {
		notifies.Add(1)
		if v, ok := occ.Params.Get("t"); ok {
			if sent, ok := v.(int64); ok {
				d := time.Duration(time.Now().UnixNano() - sent)
				lat.ObserveDuration(d)
				sampleMu.Lock()
				samples = append(samples, d.Seconds())
				sampleMu.Unlock()
			}
		}
	}

	failed := false
	step := func(name string, fn func() error) {
		status := "PASS"
		if err := fn(); err != nil {
			status = "FAIL: " + err.Error()
			failed = true
		}
		fmt.Printf("  %-44s %s\n", name, status)
	}

	// Live subscribers first, so every contribution is seen.
	subClients := make([]*ged.Client, 0, nsubs)
	defer func() {
		for _, c := range subClients {
			_ = c.Close()
		}
	}()
	step("live subscribers attached", func() error {
		for i := 0; i < nsubs; i++ {
			c, err := ged.Dial(addr, fmt.Sprintf("beast-sub%d", i))
			if err != nil {
				return err
			}
			subClients = append(subClients, c)
			if err := c.Subscribe("beast_load", detector.Recent, onNotify); err != nil {
				return err
			}
		}
		return nil
	})
	if failed {
		return 1
	}

	var elapsed time.Duration
	step(fmt.Sprintf("contribute load, zero dropped acks (%d conns)", conns), func() error {
		var (
			wg      sync.WaitGroup
			errMu   sync.Mutex
			firstMu error
			acked   atomic.Int64
		)
		start := time.Now()
		for i := 0; i < conns; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				fail := func(err error) {
					errMu.Lock()
					if firstMu == nil {
						firstMu = fmt.Errorf("conn %d: %w", i, err)
					}
					errMu.Unlock()
				}
				c, err := ged.Dial(addr, fmt.Sprintf("beast-load%d", i))
				if err != nil {
					fail(err)
					return
				}
				defer c.Close()
				for j := 0; j < perConn; j++ {
					occ := &event.Occurrence{
						Name:   "beast_load",
						Params: event.NewParams("t", time.Now().UnixNano(), "conn", i, "i", j),
					}
					if err := c.Contribute(occ); err != nil {
						fail(err)
						return
					}
				}
				if err := c.Flush(); err != nil {
					fail(err)
					return
				}
				acked.Add(int64(c.Acked()))
			}(i)
		}
		wg.Wait()
		elapsed = time.Since(start)
		if firstMu != nil {
			return firstMu
		}
		if got := acked.Load(); got != int64(total) {
			return fmt.Errorf("acked %d of %d contributions", got, total)
		}
		fmt.Printf("    %d contributions acked in %v (%.0f events/s)\n",
			total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
		return nil
	})
	if failed {
		return 1
	}

	step("notify fan-out latency", func() error {
		// Live notifies are shedable under backpressure by design; wait
		// until delivery quiesces, then report what arrived.
		expected := int64(total * nsubs)
		deadline := time.Now().Add(30 * time.Second)
		last := int64(-1)
		for time.Now().Before(deadline) {
			n := notifies.Load()
			if n >= expected || n == last {
				break
			}
			last = n
			time.Sleep(200 * time.Millisecond)
		}
		got := notifies.Load()
		if got == 0 {
			return fmt.Errorf("no live notifications received")
		}
		sampleMu.Lock()
		s := append([]float64(nil), samples...)
		sampleMu.Unlock()
		sort.Float64s(s)
		q := func(p float64) time.Duration {
			i := int(p * float64(len(s)-1))
			return time.Duration(s[i] * float64(time.Second))
		}
		fmt.Printf("    received %d/%d (shed %d under backpressure)\n", got, expected, expected-got)
		fmt.Printf("    contribute->notify latency p50=%v p95=%v p99=%v max=%v\n",
			q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
			q(0.99).Round(time.Microsecond), q(1.0).Round(time.Microsecond))
		return nil
	})

	step(fmt.Sprintf("late joiner replays %d events from offset 0", total), func() error {
		c, err := ged.Dial(addr, "beast-replay")
		if err != nil {
			return err
		}
		defer c.Close()
		var count atomic.Int64
		done := make(chan struct{})
		var once sync.Once
		end, err := c.SubscribeFrom("beast_load", 0, func(occ *event.Occurrence, offset uint64) {
			count.Add(1)
			if offset >= uint64(total)-1 {
				once.Do(func() { close(done) })
			}
		})
		if err != nil {
			return fmt.Errorf("subscribe from 0: %w (is the server running with -log?)", err)
		}
		if end < uint64(total) {
			return fmt.Errorf("server log end %d < %d contributed", end, total)
		}
		start := time.Now()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			return fmt.Errorf("replay stalled at %d/%d", count.Load(), total)
		}
		if got := count.Load(); got < int64(total) {
			return fmt.Errorf("replayed %d of %d", got, total)
		}
		fmt.Printf("    caught up %d events in %v\n", count.Load(), time.Since(start).Round(time.Millisecond))
		return nil
	})

	step("reconnect redelivers; idempotent subscriber dedups", func() error {
		// First connection: read roughly half the log, remember the last
		// offset handled, then drop the connection mid-stream.
		seen := make(map[uint64]struct{})
		var seenMu sync.Mutex
		var lastHandled atomic.Uint64
		half := make(chan struct{})
		var halfOnce sync.Once
		c1, err := ged.Dial(addr, "beast-flaky")
		if err != nil {
			return err
		}
		_, err = c1.SubscribeFrom("beast_load", 0, func(occ *event.Occurrence, offset uint64) {
			seenMu.Lock()
			seen[offset] = struct{}{}
			seenMu.Unlock()
			lastHandled.Store(offset)
			if offset >= uint64(total/2) {
				halfOnce.Do(func() { close(half) })
			}
		})
		if err != nil {
			c1.Close()
			return err
		}
		select {
		case <-half:
		case <-time.After(60 * time.Second):
			c1.Close()
			return fmt.Errorf("first stream stalled before half")
		}
		_ = c1.Close() // injected disconnect, mid-stream

		// Second connection resumes AT the last handled offset (not
		// after it): that record is redelivered, which an at-least-once
		// consumer must tolerate.
		resume := lastHandled.Load()
		dups := 0
		done := make(chan struct{})
		var doneOnce sync.Once
		c2, err := ged.Dial(addr, "beast-flaky")
		if err != nil {
			return err
		}
		defer c2.Close()
		_, err = c2.SubscribeFrom("beast_load", resume, func(occ *event.Occurrence, offset uint64) {
			seenMu.Lock()
			if _, dup := seen[offset]; dup {
				dups++
			}
			seen[offset] = struct{}{}
			n := len(seen)
			seenMu.Unlock()
			if n >= total && offset >= uint64(total)-1 {
				doneOnce.Do(func() { close(done) })
			}
		})
		if err != nil {
			return err
		}
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			seenMu.Lock()
			n := len(seen)
			seenMu.Unlock()
			return fmt.Errorf("resumed stream stalled with %d/%d unique offsets", n, total)
		}
		if dups == 0 {
			return fmt.Errorf("expected at least one duplicate delivery at resume offset %d", resume)
		}
		seenMu.Lock()
		n := len(seen)
		seenMu.Unlock()
		fmt.Printf("    resumed at offset %d, %d duplicate(s) tolerated, %d/%d unique after dedup\n",
			resume, dups, n, total)
		return nil
	})

	fmt.Println()
	if failed {
		fmt.Println("GED load driver: FAIL")
		return 1
	}
	fmt.Println("GED load driver: PASS")
	return 0
}
