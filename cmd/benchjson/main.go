// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so benchmark runs can be committed and diffed. With -merge it
// folds the new run into an existing document under the given -label,
// keeping earlier labels intact — the before/after workflow:
//
//	go test -bench E1 . | benchjson -label before -out BENCH.json
//	... optimize ...
//	go test -bench E1 . | benchjson -label after -out BENCH.json -merge
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line. The `-N` GOMAXPROCS suffix go test appends
// under -cpu is split off into Parallelism, so the same benchmark at
// different core counts shares a Name and rows are comparable across runs.
type result struct {
	Name        string  `json:"name"`
	Parallelism int     `json:"parallelism"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// splitGomaxprocs splits the trailing "-N" suffix go test appends to a
// benchmark name when GOMAXPROCS differs from 1 ("BenchmarkX/sub-8" →
// "BenchmarkX/sub", 8). A name without the suffix ran at GOMAXPROCS=1.
func splitGomaxprocs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 || i < strings.LastIndexByte(name, '/') {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 1 {
		return name, 1
	}
	return name[:i], n
}

func main() {
	label := flag.String("label", "run", "top-level key for this run")
	out := flag.String("out", "", "output file (default stdout)")
	merge := flag.Bool("merge", false, "merge into an existing -out document")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	doc := map[string][]result{}
	if *merge && *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	doc[*label] = results

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines ("BenchmarkX-8  N  T ns/op ...")
// from go test output, tolerating interleaved log lines.
func parse(f *os.File) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[2]+fields[3] == "" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark...: output" log lines
		}
		name, procs := splitGomaxprocs(fields[0])
		r := result{Name: name, Parallelism: procs, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
