// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so benchmark runs can be committed and diffed. With -merge it
// folds the new run into an existing document under the given -label,
// keeping earlier labels intact — the before/after workflow:
//
//	go test -bench E1 . | benchjson -label before -out BENCH.json
//	... optimize ...
//	go test -bench E1 . | benchjson -label after -out BENCH.json -merge
//
// With -compare it instead diffs two benchjson documents (base vs head) on
// ns/op, prints the per-benchmark deltas and the geometric-mean ratio, and
// exits nonzero when the geomean regresses past -threshold percent — the
// dependency-free CI perf gate:
//
//	benchjson -compare -base base.json -head head.json -threshold 15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line. The `-N` GOMAXPROCS suffix go test appends
// under -cpu is split off into Parallelism, so the same benchmark at
// different core counts shares a Name and rows are comparable across runs.
type result struct {
	Name        string  `json:"name"`
	Parallelism int     `json:"parallelism"`
	RuleCount   int     `json:"rule_count,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// splitGomaxprocs splits the trailing "-N" suffix go test appends to a
// benchmark name when GOMAXPROCS differs from 1 ("BenchmarkX/sub-8" →
// "BenchmarkX/sub", 8). A name without the suffix ran at GOMAXPROCS=1.
func splitGomaxprocs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 || i < strings.LastIndexByte(name, '/') {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 1 {
		return name, 1
	}
	return name[:i], n
}

// splitRuleCount splits off a trailing "/rulesN" sub-benchmark segment
// (the rule-base-size sweep convention used by BenchmarkRules_*), so the
// same benchmark at different rule counts shares a Name and the count is
// a comparable dimension ("BenchmarkRules_BulkLoad/rules1000" →
// "BenchmarkRules_BulkLoad", 1000).
func splitRuleCount(name string) (string, int) {
	i := strings.LastIndexByte(name, '/')
	if i < 0 || !strings.HasPrefix(name[i+1:], "rules") {
		return name, 0
	}
	n, err := strconv.Atoi(name[i+1+len("rules"):])
	if err != nil || n < 1 {
		return name, 0
	}
	return name[:i], n
}

func main() {
	label := flag.String("label", "run", "top-level key for this run")
	out := flag.String("out", "", "output file (default stdout)")
	merge := flag.Bool("merge", false, "merge into an existing -out document")
	compare := flag.Bool("compare", false, "compare -base against -head instead of converting stdin")
	baseFile := flag.String("base", "", "compare: baseline benchjson document")
	headFile := flag.String("head", "", "compare: candidate benchjson document")
	baseLabel := flag.String("baselabel", "", "compare: label inside -base (default: its only label)")
	headLabel := flag.String("headlabel", "", "compare: label inside -head (default: its only label)")
	threshold := flag.Float64("threshold", 15, "compare: fail when the ns/op geomean regresses more than this percent")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(*baseFile, *baseLabel, *headFile, *headLabel, *threshold))
	}

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	doc := map[string][]result{}
	if *merge && *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	doc[*label] = results

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadRun reads one labelled result set from a benchjson document. An
// empty label is allowed when the document holds exactly one label.
func loadRun(path, label string) ([]result, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	doc := map[string][]result{}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	if label == "" {
		if len(doc) != 1 {
			keys := make([]string, 0, len(doc))
			for k := range doc {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return nil, "", fmt.Errorf("%s has labels %v; pick one with -baselabel/-headlabel", path, keys)
		}
		for k := range doc {
			label = k
		}
	}
	rs, ok := doc[label]
	if !ok {
		return nil, "", fmt.Errorf("%s has no label %q", path, label)
	}
	return rs, label, nil
}

// runCompare diffs head against base on ns/op for every benchmark present
// in both (matched by name and parallelism), prints the per-benchmark
// deltas plus the geometric-mean ratio, and returns the process exit code:
// nonzero when the geomean regression exceeds threshold percent.
func runCompare(baseFile, baseLabel, headFile, headLabel string, threshold float64) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if baseFile == "" || headFile == "" {
		return fail(fmt.Errorf("-compare needs -base and -head"))
	}
	base, bl, err := loadRun(baseFile, baseLabel)
	if err != nil {
		return fail(err)
	}
	head, hl, err := loadRun(headFile, headLabel)
	if err != nil {
		return fail(err)
	}
	type key struct {
		name  string
		procs int
		rules int
	}
	baseNs := map[key]float64{}
	for _, r := range base {
		if r.NsPerOp > 0 {
			baseNs[key{r.Name, r.Parallelism, r.RuleCount}] = r.NsPerOp
		}
	}
	var keys []key
	ratios := map[key]float64{}
	for _, r := range head {
		k := key{r.Name, r.Parallelism, r.RuleCount}
		if b, ok := baseNs[k]; ok && r.NsPerOp > 0 {
			keys = append(keys, k)
			ratios[k] = r.NsPerOp / b
		}
	}
	if len(keys) == 0 {
		return fail(fmt.Errorf("no common benchmarks between %s[%s] and %s[%s]", baseFile, bl, headFile, hl))
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		if keys[i].rules != keys[j].rules {
			return keys[i].rules < keys[j].rules
		}
		return keys[i].procs < keys[j].procs
	})
	fmt.Printf("%-52s %10s\n", "benchmark", "ns/op Δ")
	logSum := 0.0
	for _, k := range keys {
		name := k.name
		if k.rules != 0 {
			name = fmt.Sprintf("%s/rules%d", name, k.rules)
		}
		if k.procs != 1 {
			name = fmt.Sprintf("%s-%d", name, k.procs)
		}
		fmt.Printf("%-52s %+9.2f%%\n", name, (ratios[k]-1)*100)
		logSum += math.Log(ratios[k])
	}
	geomean := math.Exp(logSum / float64(len(keys)))
	delta := (geomean - 1) * 100
	fmt.Printf("\ngeomean (%d benchmarks): %+.2f%% (threshold +%.0f%%)\n", len(keys), delta, threshold)
	if delta > threshold {
		fmt.Fprintf(os.Stderr, "benchjson: geomean regression %+.2f%% exceeds +%.0f%%\n", delta, threshold)
		return 1
	}
	return 0
}

// parse extracts benchmark result lines ("BenchmarkX-8  N  T ns/op ...")
// from go test output, tolerating interleaved log lines.
func parse(f *os.File) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[2]+fields[3] == "" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark...: output" log lines
		}
		name, procs := splitGomaxprocs(fields[0])
		name, rules := splitRuleCount(name)
		r := result{Name: name, Parallelism: procs, RuleCount: rules, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
