// Command replserver runs one node of a Sentinel replication pair for the
// end-to-end failover smoke (scripts/repl_smoke.sh).
//
// Leader mode (-listen) opens a database serving its WAL to followers and
// drives a sequential load: one object per transaction, each bound to
// key-NNNNNN. After every successful commit the key is appended (and
// fsynced) to the expect file, so the file is always a prefix of the
// committed history even when the process is kill -9'd mid-load.
//
// Follower mode (-replica-of) opens a replica and waits. On SIGUSR1 it
// promotes itself and verifies the expect file against its own state: the
// keys it holds must form an exact contiguous prefix of the file — a hole
// (a missing key followed by a present one) is divergence, an empty prefix
// means nothing ever replicated. It then performs a post-promotion write
// and reads it back. Any violation exits nonzero.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	sentinel "repro"
)

const smokeClass = "SMOKE"

func main() {
	log.SetFlags(0)
	var (
		dir       = flag.String("dir", "", "data directory (created if missing)")
		listen    = flag.String("listen", "", "leader mode: address to serve the WAL on")
		replicaOf = flag.String("replica-of", "", "follower mode: leader's WAL address")
		load      = flag.Int("load", 400, "leader mode: number of keys to commit")
		pace      = flag.Duration("pace", 2*time.Millisecond, "leader mode: delay between commits")
		expect    = flag.String("expect", "", "expect file: written by the leader, verified by the follower")
	)
	flag.Parse()
	if *dir == "" || *expect == "" {
		log.Fatal("replserver: -dir and -expect are required")
	}
	if (*listen == "") == (*replicaOf == "") {
		log.Fatal("replserver: set exactly one of -listen (leader) or -replica-of (follower)")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatalf("replserver: %v", err)
	}
	if *listen != "" {
		runLeader(*dir, *listen, *expect, *load, *pace)
	} else {
		runFollower(*dir, *replicaOf, *expect)
	}
}

func runLeader(dir, listen, expect string, load int, pace time.Duration) {
	db, err := sentinel.Open(sentinel.Options{Dir: dir, PoolSize: 64, ReplAddr: listen})
	if err != nil {
		log.Fatalf("replserver: open leader: %v", err)
	}
	if _, err := db.DefineClass(smokeClass, "", false); err != nil {
		log.Fatalf("replserver: %v", err)
	}
	log.Printf("replserver: leader serving WAL on %s", db.ReplAddr())

	f, err := os.OpenFile(expect, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Fatalf("replserver: %v", err)
	}
	for i := 1; i <= load; i++ {
		key := fmt.Sprintf("key-%06d", i)
		tx, err := db.Begin()
		if err != nil {
			log.Fatalf("replserver: begin: %v", err)
		}
		obj, err := db.New(tx, smokeClass, map[string]any{"seq": float64(i)})
		if err != nil {
			log.Fatalf("replserver: new: %v", err)
		}
		if err := db.Bind(tx, key, obj.OID); err != nil {
			log.Fatalf("replserver: bind: %v", err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatalf("replserver: commit %s: %v", key, err)
		}
		// Commit is durable before the key enters the file: the file never
		// promises more than the log holds.
		if _, err := fmt.Fprintln(f, key); err != nil {
			log.Fatalf("replserver: expect file: %v", err)
		}
		if err := f.Sync(); err != nil {
			log.Fatalf("replserver: expect file: %v", err)
		}
		time.Sleep(pace)
	}
	log.Printf("replserver: load complete (%d keys)", load)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	if err := db.Close(); err != nil {
		log.Fatalf("replserver: close: %v", err)
	}
	log.Print("replserver: leader shutdown clean")
}

func runFollower(dir, leaderAddr, expect string) {
	db, err := sentinel.Open(sentinel.Options{Dir: dir, PoolSize: 64, ReplicaOf: leaderAddr})
	if err != nil {
		log.Fatalf("replserver: open follower: %v", err)
	}
	if _, err := db.DefineClass(smokeClass, "", false); err != nil {
		log.Fatalf("replserver: %v", err)
	}
	log.Printf("replserver: following %s", leaderAddr)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	if sig := <-ch; sig != syscall.SIGUSR1 {
		if err := db.Close(); err != nil {
			log.Fatalf("replserver: close: %v", err)
		}
		log.Print("replserver: follower shutdown clean")
		return
	}

	stats, err := db.Promote()
	if err != nil {
		log.Fatalf("replserver: promote: %v", err)
	}
	log.Printf("replserver: promoted (published %d, aborted %d, %v)",
		stats.Published, stats.Aborted, stats.Elapsed)

	keys, err := readLines(expect)
	if err != nil {
		log.Fatalf("replserver: %v", err)
	}
	tx, err := db.Begin()
	if err != nil {
		log.Fatalf("replserver: begin after promote: %v", err)
	}
	present, hole := 0, false
	for _, key := range keys {
		if _, err := db.Resolve(tx, key); err != nil {
			hole = true
			continue
		}
		if hole {
			log.Fatalf("replserver: divergence: %s present after a missing key", key)
		}
		present++
	}
	if err := tx.Commit(); err != nil {
		log.Fatalf("replserver: %v", err)
	}
	if present == 0 {
		log.Fatalf("replserver: nothing replicated (0 of %d keys)", len(keys))
	}

	wtx, err := db.Begin()
	if err != nil {
		log.Fatalf("replserver: %v", err)
	}
	obj, err := db.New(wtx, smokeClass, map[string]any{"seq": -1.0})
	if err != nil {
		log.Fatalf("replserver: post-promotion new: %v", err)
	}
	if err := db.Bind(wtx, "post-promote", obj.OID); err != nil {
		log.Fatalf("replserver: post-promotion bind: %v", err)
	}
	if err := wtx.Commit(); err != nil {
		log.Fatalf("replserver: post-promotion commit: %v", err)
	}
	rtx, err := db.Begin()
	if err != nil {
		log.Fatalf("replserver: %v", err)
	}
	if _, err := db.Resolve(rtx, "post-promote"); err != nil {
		log.Fatalf("replserver: post-promotion read-back: %v", err)
	}
	_ = rtx.Commit()

	if err := db.Close(); err != nil {
		log.Fatalf("replserver: close: %v", err)
	}
	log.Printf("replserver: promote verified, %d/%d replicated keys, post-promotion write ok",
		present, len(keys))
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			lines = append(lines, line)
		}
	}
	return lines, sc.Err()
}
