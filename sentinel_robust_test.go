package sentinel_test

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sentinel "repro"
	"repro/internal/faults"
	"repro/internal/lockmgr"
	"repro/internal/rules"
)

// metricsBody scrapes the database's /metrics endpoint.
func metricsBody(t *testing.T, db *sentinel.Database) string {
	t.Helper()
	srv := httptest.NewServer(db.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// openRobustDB opens an in-memory database with concurrent rule workers
// and the given retry/cascade knobs, plus the STOCK schema.
func openRobustDB(t *testing.T, opts sentinel.Options) *sentinel.Database {
	t.Helper()
	opts.AppName = "robust"
	db, err := sentinel.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	if err := db.Exec(`
class STOCK reactive {
    event end(e1) sell_stock(qty);
}
`); err != nil {
		t.Fatal(err)
	}
	stock, err := db.Class("STOCK")
	if err != nil {
		t.Fatal(err)
	}
	stock.DefineMethod(sentinel.Method{
		Name: "sell_stock", Params: []string{"qty"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			cur, _ := self.Get("qty").(int)
			self.Set("qty", cur-args[0].(int))
			return cur - args[0].(int), nil
		},
	})
	return db
}

// TestDeadlockedRulesRetryAndSucceed is the acceptance stress for rule
// self-healing: two detached rules lock two objects in opposite orders
// (AB-BA), so runs deadlock; the lock manager aborts a victim, the rule
// layer retries it in a fresh subtransaction with backoff, and every
// execution must eventually succeed — with the retries visible in
// /metrics.
func TestDeadlockedRulesRetryAndSucceed(t *testing.T) {
	// Persistent mode matters here: only store-backed objects are rolled
	// back when a deadlock victim's subtransaction aborts, so the final
	// quantities prove retries neither lost nor double-applied work.
	db := openRobustDB(t, sentinel.Options{
		Dir:              t.TempDir(),
		Workers:          4,
		RuleRetries:      25,
		RuleRetryBackoff: time.Millisecond,
	})
	var ruleErrs atomic.Uint64
	db.RuleManager().OnError = func(rule string, err error) {
		ruleErrs.Add(1)
		t.Errorf("rule %s failed permanently: %v", rule, err)
	}

	setup, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.New(setup, "STOCK", map[string]any{"qty": 1000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.New(setup, "STOCK", map[string]any{"qty": 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	for _, ev := range []string{"evAB", "evBA"} {
		if err := db.DefineExplicitEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	// The AB-BA cycle forms on two named resources locked in opposite
	// orders, with a sleep holding the first lock so the opposing rule
	// reliably takes its own first lock. The object decrements happen only
	// once both locks are held, so a deadlock victim aborts with no work
	// done and the retried attempt applies it exactly once.
	lockPair := func(firstRes, secondRes string) sentinel.Action {
		return func(x *sentinel.Execution) error {
			if err := x.Txn.Lock(firstRes, lockmgr.Exclusive); err != nil {
				return err
			}
			time.Sleep(2 * time.Millisecond)
			if err := x.Txn.Lock(secondRes, lockmgr.Exclusive); err != nil {
				return err
			}
			for _, oid := range []sentinel.OID{a.OID, b.OID} {
				inst, err := db.Load(x.Txn, oid)
				if err != nil {
					return err
				}
				if _, err := db.Invoke(x.Txn, inst, "sell_stock", 1); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if _, err := db.DefineRule(sentinel.RuleSpec{
		Name: "RAB", Event: "evAB", Coupling: sentinel.Detached, Action: lockPair("res:A", "res:B"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineRule(sentinel.RuleSpec{
		Name: "RBA", Event: "evBA", Coupling: sentinel.Detached, Action: lockPair("res:B", "res:A"),
	}); err != nil {
		t.Fatal(err)
	}

	const rounds = 20
	for i := 0; i < rounds; i++ {
		if err := db.RaiseEvent(nil, "evAB", nil); err != nil {
			t.Fatal(err)
		}
		if err := db.RaiseEvent(nil, "evBA", nil); err != nil {
			t.Fatal(err)
		}
		db.RuleManager().WaitDetached()
	}

	if n := ruleErrs.Load(); n != 0 {
		t.Fatalf("%d rule executions failed permanently despite retry", n)
	}
	// Every execution decremented both objects exactly once, so retries
	// never double-applied and exhaustion never dropped an execution.
	check, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer check.Abort()
	for _, obj := range []*sentinel.Instance{a, b} {
		inst, err := db.Load(check, obj.OID)
		if err != nil {
			t.Fatal(err)
		}
		if qty := inst.Attr("qty").(int); qty != 1000-2*rounds {
			t.Fatalf("object qty %d, want %d — a retried rule lost or repeated work", qty, 1000-2*rounds)
		}
	}

	body := metricsBody(t, db)
	if v := metricValue(t, body, "sentinel_rules_retries_total"); v == 0 {
		t.Fatal("no retries recorded across 20 AB-BA rounds — deadlocks never formed or retries are invisible")
	}
	if v := metricValue(t, body, "sentinel_rules_fires_detached_total"); v != 2*rounds {
		t.Fatalf("detached fires %v, want %d", v, 2*rounds)
	}
	t.Logf("retries over %d rounds: %v", rounds, metricValue(t, body, "sentinel_rules_retries_total"))
}

// TestInjectedRuleErrorIsCountedAndContained: a fault-injected action
// error must abort only the rule's subtransaction — counted in
// sentinel_rules_errors_total and reported through OnError — while the
// triggering transaction commits untouched.
func TestInjectedRuleErrorIsCountedAndContained(t *testing.T) {
	db := openRobustDB(t, sentinel.Options{SerialRules: true, RuleRetries: -1})
	var got error
	db.RuleManager().OnError = func(rule string, err error) { got = err }
	if _, err := db.DefineRule(sentinel.RuleSpec{
		Name: "RFail", Event: "e1",
		Action: func(*sentinel.Execution) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	before := metricValue(t, metricsBody(t, db), "sentinel_rules_errors_total")

	faults.Arm(faults.NewInjector(7, faults.Trigger{
		Point: faults.RuleAction, On: 1, Limit: 1, Fault: faults.Fault{},
	}))
	defer faults.Disarm()

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := db.New(tx, "STOCK", map[string]any{"qty": 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatalf("triggering invoke poisoned by rule failure: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("triggering transaction poisoned by rule failure: %v", err)
	}
	faults.Disarm()

	if !errors.Is(got, faults.ErrInjected) {
		t.Fatalf("OnError got %v, want the injected fault", got)
	}
	body := metricsBody(t, db)
	if after := metricValue(t, body, "sentinel_rules_errors_total"); after != before+1 {
		t.Fatalf("errors counter %v, want %v", after, before+1)
	}
	if v := metricValue(t, body, "sentinel_faults_injected_total"); v == 0 {
		t.Fatal("sentinel_faults_injected_total not visible in /metrics after an armed run")
	}
	// The committed write must have survived the rule's failure.
	check, _ := db.Begin()
	defer check.Abort()
	inst, err := db.Load(check, obj.OID)
	if err != nil {
		t.Fatal(err)
	}
	if qty := inst.Attr("qty").(int); qty != 4 {
		t.Fatalf("qty %d, want 4", qty)
	}
}

// TestInjectedRulePanicIsContained: a fault-injected PANIC in an immediate
// rule's action must be recovered by the rule layer, counted as an error,
// and must never take down the process or poison the triggering
// transaction.
func TestInjectedRulePanicIsContained(t *testing.T) {
	db := openRobustDB(t, sentinel.Options{SerialRules: true, RuleRetries: -1})
	var got error
	db.RuleManager().OnError = func(rule string, err error) { got = err }
	ran := 0
	if _, err := db.DefineRule(sentinel.RuleSpec{
		Name: "RPanic", Event: "e1",
		Action: func(*sentinel.Execution) error { ran++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	before := metricValue(t, metricsBody(t, db), "sentinel_rules_errors_total")

	faults.Arm(faults.NewInjector(7, faults.Trigger{
		Point: faults.RuleAction, On: 1, Limit: 1, Fault: faults.Fault{Panic: true},
	}))
	defer faults.Disarm()

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := db.New(tx, "STOCK", map[string]any{"qty": 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatalf("triggering invoke poisoned by rule panic: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("triggering transaction poisoned by rule panic: %v", err)
	}
	faults.Disarm()

	if ran != 0 {
		t.Fatalf("action body ran %d times; the panic verdict should fire instead of it", ran)
	}
	if got == nil {
		t.Fatal("panicking rule was not reported through OnError")
	}
	if after := metricValue(t, metricsBody(t, db), "sentinel_rules_errors_total"); after != before+1 {
		t.Fatalf("errors counter %v, want %v", after, before+1)
	}
}

// TestCascadeDepthShed: a self-raising rule would cascade forever; the
// configured depth cap must shed the triggering past the limit, count it,
// and report ErrCascadeShed — the database stays live.
func TestCascadeDepthShed(t *testing.T) {
	db := openRobustDB(t, sentinel.Options{SerialRules: true, MaxCascadeDepth: 3})
	var mu sync.Mutex
	var shedErr error
	db.RuleManager().OnError = func(rule string, err error) {
		mu.Lock()
		defer mu.Unlock()
		if errors.Is(err, rules.ErrCascadeShed) {
			shedErr = err
		}
	}
	if err := db.DefineExplicitEvent("boom"); err != nil {
		t.Fatal(err)
	}
	runs := 0
	if _, err := db.DefineRule(sentinel.RuleSpec{
		Name: "RBoom", Event: "boom",
		Action: func(x *sentinel.Execution) error {
			runs++
			if runs > 100 {
				return fmt.Errorf("cascade not shed after %d runs", runs)
			}
			return db.RaiseEventFrom(x, "boom", nil)
		},
	}); err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RaiseEvent(tx, "boom", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if runs == 0 || runs > 10 {
		t.Fatalf("self-raising rule ran %d times; want a small count bounded by the depth cap", runs)
	}
	if shedErr == nil {
		t.Fatal("no ErrCascadeShed reported through OnError")
	}
	if v := metricValue(t, metricsBody(t, db), "sentinel_rules_sheds_total"); v == 0 {
		t.Fatal("sentinel_rules_sheds_total did not count the shed")
	}
}

// TestRuleFailureStormLeaksNoOccurrences: a storm of probabilistically
// fault-injected rule failures across many transactions must leave the
// event graph empty — failed rules may not strand partial occurrences in
// operator nodes.
func TestRuleFailureStormLeaksNoOccurrences(t *testing.T) {
	db := openRobustDB(t, sentinel.Options{SerialRules: true, RuleRetries: -1})
	db.RuleManager().OnError = func(string, error) {} // failures are the point
	if _, err := db.DefineRule(sentinel.RuleSpec{
		Name: "RStorm", Event: "e1",
		Action: func(*sentinel.Execution) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}

	faults.Arm(faults.NewInjector(99, faults.Trigger{
		Point: faults.RuleAction, Prob: 0.5, Fault: faults.Fault{},
	}, faults.Trigger{
		Point: faults.RuleAction, Prob: 0.1, Fault: faults.Fault{Panic: true},
	}))
	defer faults.Disarm()

	for i := 0; i < 40; i++ {
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		obj, err := db.New(tx, "STOCK", map[string]any{"qty": 100})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
				t.Fatal(err)
			}
		}
		if i%3 == 0 {
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
		} else if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	faults.Disarm()

	if n := db.Detector().PendingOccurrences(); n != 0 {
		t.Fatalf("%d occurrences leaked in the event graph after the failure storm", n)
	}
}

// TestInvalidOptionsRejected: Open must reject out-of-range knobs instead
// of silently clamping them.
func TestInvalidOptionsRejected(t *testing.T) {
	cases := []struct {
		name string
		opts sentinel.Options
	}{
		{"negative lock timeout", sentinel.Options{LockTimeout: -1}},
		{"rule retries below -1", sentinel.Options{RuleRetries: -2}},
		{"negative retry backoff", sentinel.Options{RuleRetryBackoff: -time.Millisecond}},
		{"cascade depth below -1", sentinel.Options{MaxCascadeDepth: -5}},
		{"negative workers", sentinel.Options{Workers: -1}},
		{"negative pool size", sentinel.Options{PoolSize: -1}},
	}
	for _, tc := range cases {
		if db, err := sentinel.Open(tc.opts); err == nil {
			db.Close()
			t.Errorf("%s: Open accepted %+v", tc.name, tc.opts)
		}
	}
	// The sentinel values -1 (disable retry, unlimited cascade) are valid.
	db, err := sentinel.Open(sentinel.Options{RuleRetries: -1, MaxCascadeDepth: -1})
	if err != nil {
		t.Fatalf("Open rejected the documented -1 sentinels: %v", err)
	}
	db.Close()
}
