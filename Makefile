# Build, test, and benchmark entry points. `make check` is the tier-1
# gate; `make bench` regenerates BENCH_detector.json (the committed
# before/after numbers for the signal fast path) and `make bench-storage`
# regenerates BENCH_storage.json (the commit-pipeline numbers). CI calls
# the targets below rather than inlining commands, so the benchmark
# pattern and tool invocations live in exactly one place.

GO ?= go
BENCH_PATTERN ?= BenchmarkE1_|BenchmarkE4_|BenchmarkStorage_|BenchmarkRules_|BenchmarkGED_|BenchmarkQuery_
BENCH_PKG ?= . ./internal/storage ./internal/ged
BENCH_OUT ?= BENCH_detector.json
BENCH_STORAGE_OUT ?= BENCH_storage.json
BENCH_GED_OUT ?= BENCH_ged.json
BENCH_QUERY_OUT ?= BENCH_query.json
BENCH_TIME ?= 1s
BENCH_COUNT ?= 1
BENCH_CPUS ?= 1,4,8
BENCH_THRESHOLD ?= 15

.PHONY: all build test check lint cover bench bench-text bench-smoke bench-record bench-compare bench-storage bench-rules bench-ged bench-query ged-smoke repl-smoke torture clean

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# check is the full gate: vet plus the whole suite under the race
# detector (the concurrency stress tests only mean something with -race).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# torture runs the crash-torture harness: TORTURE_ITERS seeded kill-point
# iterations against the storage manager, each reopened and verified
# (committed present, aborted absent, interrupted commits all-or-nothing),
# then REPL_TORTURE_ITERS seeded leader/follower replication iterations
# (leader killed and restarted, leader killed and follower promoted,
# follower killed mid-apply — zero divergence and bounded replica lag
# required), then the query-layer torture (same kill-point discipline
# through the object + secondary-index stack, each recovery checked
# against the index≡scan oracle) and a -race pass of concurrent index
# readers vs committers. The seed is always logged; reproduce a failure
# with TORTURE_SEED=<seed from the log>.
TORTURE_ITERS ?= 500
REPL_TORTURE_ITERS ?= 200
TORTURE_SEED ?=
torture:
	SENTINEL_TORTURE_ITERS=$(TORTURE_ITERS) SENTINEL_TORTURE_SEED=$(TORTURE_SEED) \
		$(GO) test -count=1 -run 'TestCrashTorture|TestTortureHarnessDetectsBrokenRecovery|TestQueryTorture' -v ./internal/faulttest
	SENTINEL_REPL_TORTURE_ITERS=$(REPL_TORTURE_ITERS) \
		$(GO) test -count=1 -run TestReplTorture -v ./internal/faulttest
	$(GO) test -count=1 -race -run TestQueryIndexRaceStress -v ./internal/faulttest

# lint runs the static analyzers beyond vet. The tools are not vendored;
# CI installs them (see .github/workflows/ci.yml) and locally the target
# skips whichever is missing rather than failing the build.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

# cover runs the suite with a coverage profile (CI uploads it as an
# artifact).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# bench-text is the one place the benchmark invocation is defined; every
# other bench target (and CI) parameterizes it instead of repeating the
# pattern.
bench-text:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) -benchmem -cpu $(BENCH_CPUS) $(BENCH_PKG)

# bench-smoke proves the benchmarks still execute (CI); its numbers are
# not measurements.
bench-smoke:
	$(MAKE) bench-text BENCH_TIME=100x BENCH_CPUS=1,4

# bench reruns the detector signal-path benchmarks and records them under
# the "after" label of $(BENCH_OUT), preserving the committed "before"
# (seed) numbers. Run with BENCH_LABEL=before on a clean baseline to
# regenerate both sides.
BENCH_LABEL ?= after
bench:
	$(MAKE) bench-text BENCH_PATTERN='BenchmarkE1_|BenchmarkE4_' BENCH_PKG=. \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out $(BENCH_OUT) -merge

# bench-storage reruns the storage commit-pipeline benchmarks (group
# commit, lock-striped pool, txn sharding; -cpu sweeps the writer count)
# and records them under the "after" label of $(BENCH_STORAGE_OUT).
bench-storage:
	$(MAKE) bench-text BENCH_PATTERN='BenchmarkStorage_' BENCH_PKG=./internal/storage \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out $(BENCH_STORAGE_OUT) -merge

# bench-rules reruns the rule-scale benchmarks (bulk vs sequential load,
# live-load interleaving, signal cost against a resident rule base) at
# the full 1k/10k/100k sweep and records them under the
# "rules-$(BENCH_LABEL)" label of $(BENCH_OUT). One iteration per size:
# each op loads the whole rule base, so -benchtime 1x is already a
# multi-second measurement at 100k.
BENCH_RULES_COUNTS ?= 1000,10000,100000
bench-rules:
	( SENTINEL_BENCH_RULES=$(BENCH_RULES_COUNTS) \
		$(MAKE) bench-text BENCH_PATTERN='BenchmarkRules_(Bulk|Seq|Live)Load' BENCH_PKG=. BENCH_TIME=1x BENCH_CPUS=1 && \
	  SENTINEL_BENCH_RULES=$(BENCH_RULES_COUNTS) \
		$(MAKE) bench-text BENCH_PATTERN='BenchmarkRules_SignalWithRuleBase' BENCH_PKG=. BENCH_TIME=2s BENCH_CPUS=1 ) \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -label rules-$(BENCH_LABEL) -out $(BENCH_OUT) -merge

# bench-ged reruns the GED event-bus benchmarks (pipelined contribute
# throughput with the durable log, 8-way live notify fan-out latency,
# stream replay catch-up) and records them under the "after" label of
# $(BENCH_GED_OUT).
bench-ged:
	$(MAKE) bench-text BENCH_PATTERN='BenchmarkGED_' BENCH_PKG=./internal/ged BENCH_CPUS=1 \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out $(BENCH_GED_OUT) -merge

# ged-smoke is the end-to-end event-bus gate: build gedserver and beast
# (race detector on), run a gedserver with a durable log, drive it with
# beast's multi-client load mode (contribute/subscribe/replay under
# injected disconnects), and require zero dropped acks plus a clean
# server shutdown. Scale down locally with GED_SMOKE_CONNS.
GED_SMOKE_CONNS ?= 1000
ged-smoke:
	GED_SMOKE_CONNS=$(GED_SMOKE_CONNS) ./scripts/ged_smoke.sh

# repl-smoke is the end-to-end replication failover gate: build replserver
# with the race detector, run a leader and a follower, kill -9 the leader
# mid-load, promote the follower with SIGUSR1, and require the promoted
# store to hold an exact prefix of the leader's committed history plus a
# successful post-promotion write (scripts/repl_smoke.sh).
repl-smoke:
	./scripts/repl_smoke.sh

# bench-query reruns the query-engine benchmarks — indexed probes and
# range scans versus full extent scans at 1k/10k/100k objects, and
# indexed Where rule conditions versus function-condition extent walks —
# and records them under the "after" label of $(BENCH_QUERY_OUT). The
# 100k scan leg costs seconds per op, so one timed second per
# sub-benchmark is already a stable sample.
BENCH_QUERY_SIZES ?= 1000,10000,100000
bench-query:
	SENTINEL_BENCH_QUERY=$(BENCH_QUERY_SIZES) \
		$(MAKE) bench-text BENCH_PATTERN='BenchmarkQuery_|BenchmarkRules_IndexedCondition' BENCH_PKG=. BENCH_CPUS=1 \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out $(BENCH_QUERY_OUT) -merge

# bench-record captures one labelled run into BENCH_REC_OUT (the CI
# before/after halves of the regression gate).
BENCH_REC_OUT ?= bench-run.json
bench-record:
	$(MAKE) bench-text BENCH_CPUS=1,4 \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out $(BENCH_REC_OUT)

# bench-compare gates BASE vs HEAD benchjson documents: fails when the
# ns/op geomean regresses more than BENCH_THRESHOLD percent.
bench-compare:
	$(GO) run ./cmd/benchjson -compare -base $(BASE) -head $(HEAD) -threshold $(BENCH_THRESHOLD)

clean:
	$(GO) clean ./...
	rm -f coverage.out
