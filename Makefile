# Build, test, and benchmark entry points. `make check` is the tier-1
# gate; `make bench` regenerates BENCH_detector.json (the committed
# before/after numbers for the signal fast path).

GO ?= go
BENCH_PATTERN ?= BenchmarkE1_|BenchmarkE4_
BENCH_OUT ?= BENCH_detector.json

.PHONY: all build test check bench clean

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# check is the full gate: vet plus the whole suite under the race
# detector (the concurrency stress tests only mean something with -race).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# bench reruns the detector signal-path benchmarks and records them under
# the "after" label of $(BENCH_OUT), preserving the committed "before"
# (seed) numbers. Run with BENCH_LABEL=before on a clean baseline to
# regenerate both sides.
BENCH_LABEL ?= after
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -cpu 1,4,8 . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out $(BENCH_OUT) -merge

clean:
	$(GO) clean ./...
