package sentinel_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	sentinel "repro"
)

func TestOpenBadDirectory(t *testing.T) {
	// A file where the directory should be.
	dir := t.TempDir()
	clash := filepath.Join(dir, "clash")
	if err := os.WriteFile(clash, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sentinel.Open(sentinel.Options{Dir: filepath.Join(clash, "sub")}); err == nil {
		t.Fatal("Open under a file succeeded")
	}
}

func TestOpenBadGEDAddr(t *testing.T) {
	if _, err := sentinel.Open(sentinel.Options{GEDAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("Open with dead GED succeeded")
	}
}

func TestGlobalCallsWithoutGED(t *testing.T) {
	db, err := sentinel.Open(sentinel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ShareEvent("x"); !errors.Is(err, sentinel.ErrNoGED) {
		t.Fatalf("ShareEvent: %v", err)
	}
	if err := db.OnGlobalEvent("x", sentinel.Recent, func(*sentinel.Execution) error { return nil }); !errors.Is(err, sentinel.ErrNoGED) {
		t.Fatalf("OnGlobalEvent: %v", err)
	}
}

func TestDoubleCloseRejected(t *testing.T) {
	db, err := sentinel.Open(sentinel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err == nil {
		t.Fatal("double close succeeded")
	}
}

func TestRaiseUnknownEvent(t *testing.T) {
	db, err := sentinel.Open(sentinel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.RaiseEvent(nil, "ghost", nil); err == nil {
		t.Fatal("RaiseEvent(ghost) succeeded")
	}
	if err := db.DefineExplicitEvent("sig"); err != nil {
		t.Fatal(err)
	}
	if err := db.RaiseEvent(nil, "sig", nil); err != nil {
		t.Fatal(err)
	}
}

func TestExecSyntaxErrorSurfaces(t *testing.T) {
	db, err := sentinel.Open(sentinel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	err = db.Exec(`event x = ;`)
	if err == nil || !strings.Contains(err.Error(), "line") {
		t.Fatalf("Exec error: %v", err)
	}
}

func TestDeleteAndUnknownLoadThroughFacade(t *testing.T) {
	db := openStockDB(t, t.TempDir())
	tx, _ := db.Begin()
	obj, err := db.New(tx, "STOCK", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(tx, obj.OID); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load(tx, obj.OID); err == nil {
		t.Fatal("deleted object loadable")
	}
	if _, err := db.Resolve(tx, "never-bound"); err == nil {
		t.Fatal("unbound name resolved")
	}
	_ = tx.Commit()
}

func TestInstanceLevelRuleThroughFacade(t *testing.T) {
	// The paper's set_IBM_price: instance name resolved via the name
	// manager at rule compile time.
	db := openStockDB(t, t.TempDir())
	setup, _ := db.Begin()
	ibm, _ := db.New(setup, "STOCK", map[string]any{"qty": 10})
	dec, _ := db.New(setup, "STOCK", map[string]any{"qty": 10})
	if err := db.Bind(setup, "IBM", ibm.OID); err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	var fired int
	db.BindAction("onIBM", func(*sentinel.Execution) error { fired++; return nil })
	if err := db.Exec(`
event ibm_price = begin STOCK("IBM").set_price(price);
rule R(ibm_price, true, onIBM);
`); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	if _, err := db.Invoke(tx, dec, "set_price", 1.0); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("instance rule fired for the wrong object")
	}
	if _, err := db.Invoke(tx, ibm, "set_price", 2.0); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired=%d", fired)
	}
	_ = tx.Commit()

	// Unknown instance name fails at compile time.
	if err := db.Exec(`event nope = begin STOCK("GHOST").set_price(price);`); err == nil {
		t.Fatal("unknown instance name compiled")
	}
}

func TestAdvanceTimeRunsTemporalRules(t *testing.T) {
	db := openStockDB(t, "")
	if err := db.Exec(`event overdue = e1 + 50;`); err != nil {
		t.Fatal(err)
	}
	var fired int
	db.BindAction("late", func(*sentinel.Execution) error { fired++; return nil })
	if err := db.Exec(`rule L(overdue, true, late);`); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 5})
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatal(err)
	}
	db.AdvanceTime(100)
	if fired != 1 {
		t.Fatalf("temporal rule fired %d times", fired)
	}
	_ = tx.Commit()
}
