package sentinel_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	sentinel "repro"
)

// soakSeed returns the workload RNG seed: SENTINEL_SOAK_SEED when set
// (so a failing run can be replayed exactly), otherwise a fixed default.
// The seed is always logged, making any failure reproducible.
func soakSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(1)
	if s := os.Getenv("SENTINEL_SOAK_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SENTINEL_SOAK_SEED=%q: %v", s, err)
		}
		seed = v
	}
	t.Logf("soak workload seed %d (set SENTINEL_SOAK_SEED=%d to reproduce)", seed, seed)
	return seed
}

// TestSoakConcurrentWorkload runs the full stack — persistent store,
// reactive dispatch, composite detection, immediate+deferred rules,
// nested triggering — under concurrent transactions for a while and
// checks global accounting at the end. This is the "does everything
// compose" test.
func TestSoakConcurrentWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	db := openStockDB(t, t.TempDir())

	var immediateRuns, deferredRuns, nestedRuns atomic.Int64
	db.BindAction("imm", func(x *sentinel.Execution) error {
		immediateRuns.Add(1)
		// Every 4th run cascades: create an audit object (nested write)
		// whose set_price triggers the nested rule.
		if immediateRuns.Load()%4 == 0 {
			obj, err := db.New(x.Txn, "STOCK", nil)
			if err != nil {
				return err
			}
			_, err = db.Invoke(x.Txn, obj, "set_price", 1.0)
			return err
		}
		return nil
	})
	db.BindAction("def", func(*sentinel.Execution) error { deferredRuns.Add(1); return nil })
	db.BindAction("nested", func(*sentinel.Execution) error { nestedRuns.Add(1); return nil })
	if err := db.Exec(`
rule Imm(e1, true, imm);
rule Def(e1, true, def, CUMULATIVE, DEFERRED);
rule Nested(e2, true, nested);
`); err != nil {
		t.Fatal(err)
	}

	// SENTINEL_SOAK_RULES bulk-loads that many extra rules before the
	// workload starts (pairwise-overlapping conjunctions over a dedicated
	// class — see genRuleSpec), so the soak also exercises dispatch against
	// a large resident rule base and a populated admission index.
	if s := os.Getenv("SENTINEL_SOAK_RULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2 {
			t.Fatalf("SENTINEL_SOAK_RULES=%q: want an integer >= 2", s)
		}
		db.BindAction("noop", func(*sentinel.Execution) error { return nil })
		if err := db.LoadRules(genRuleSpec(n)); err != nil {
			t.Fatal(err)
		}
		t.Logf("soak rule base: %d extra rules loaded", n)
	}

	// SENTINEL_SOAK_WRITERS widens the concurrent-writer fan-out (default
	// 4) to stress the parallel storage commit pipeline; the accounting
	// below scales with it.
	workers := 4
	if s := os.Getenv("SENTINEL_SOAK_WRITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("SENTINEL_SOAK_WRITERS=%q: want a positive integer", s)
		}
		workers = n
	}
	// SENTINEL_SOAK_READERS adds a pool of snapshot readers (default 2)
	// running concurrently with the writers: each iteration takes one
	// snapshot transaction, scans the STOCK extent twice, and requires the
	// two scans to agree exactly — the repeatable-read contract of the
	// lock-free MVCC path, exercised against live rule-cascading commits.
	snapReaders := 2
	if s := os.Getenv("SENTINEL_SOAK_READERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			t.Fatalf("SENTINEL_SOAK_READERS=%q: want a non-negative integer", s)
		}
		snapReaders = n
	}
	const txnsPerWorker = 25
	const maxSellsPerTxn = 8
	seed := soakSeed(t)
	var wg sync.WaitGroup
	var committed, committedSells atomic.Int64
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker RNG derived from the logged seed: deterministic
			// within a worker, and *rand.Rand is not goroutine-safe.
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < txnsPerWorker; i++ {
				sells := 1 + rng.Intn(maxSellsPerTxn)
				qty := 50 + rng.Intn(101)
				abandon := rng.Intn(10) == 0 // deliberate abort path
				tx, err := db.Begin()
				if err != nil {
					errCh <- err
					return
				}
				obj, err := db.New(tx, "STOCK", map[string]any{"qty": qty})
				if err != nil {
					errCh <- fmt.Errorf("worker %d: %w", w, err)
					_ = tx.Abort()
					return
				}
				ok := true
				for j := 0; j < sells; j++ {
					if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
						// Lock conflicts can abort a rule; skip the txn.
						ok = false
						break
					}
				}
				if !ok || abandon {
					_ = tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
				committed.Add(1)
				committedSells.Add(int64(sells))
			}
			errCh <- nil
		}(w)
	}
	var rwg sync.WaitGroup
	var snapScans atomic.Int64
	rerrCh := make(chan error, snapReaders)
	for r := 0; r < snapReaders; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			// Fixed iteration budget: an unbounded spin loop would starve
			// the writers on small machines.
			for i := 0; i < 20; i++ {
				tx, err := db.BeginSnapshot()
				if err != nil {
					rerrCh <- err
					return
				}
				scan := func() (map[sentinel.OID]int, error) {
					out := map[sentinel.OID]int{}
					err := db.ForEach(tx, "STOCK", true, func(obj *sentinel.Instance) bool {
						q, _ := obj.Attr("qty").(int)
						out[obj.OID] = q
						return true
					})
					return out, err
				}
				s1, err := scan()
				if err != nil {
					rerrCh <- err
					_ = tx.Abort()
					return
				}
				s2, err := scan()
				if err != nil {
					rerrCh <- err
					_ = tx.Abort()
					return
				}
				if len(s1) != len(s2) {
					rerrCh <- fmt.Errorf("snapshot scan not repeatable: %d then %d objects", len(s1), len(s2))
					_ = tx.Abort()
					return
				}
				for oid, q := range s1 {
					q2, ok := s2[oid]
					if !ok || q2 != q {
						rerrCh <- fmt.Errorf("snapshot scan not repeatable at %v: qty %d then %d (present=%v)", oid, q, q2, ok)
						_ = tx.Abort()
						return
					}
				}
				snapScans.Add(1)
				if err := tx.Commit(); err != nil {
					rerrCh <- err
					return
				}
			}
			rerrCh <- nil
		}()
	}
	wg.Wait()
	rwg.Wait()
	close(errCh)
	close(rerrCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	for err := range rerrCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if snapReaders > 0 && snapScans.Load() == 0 {
		t.Fatal("snapshot readers completed no scans")
	}

	c := committed.Load()
	if c == 0 {
		t.Fatal("no transactions committed")
	}
	// Deferred fires at most once per pre-commit, and at least once
	// overall. (With concurrent transactions in one application the A*
	// windows can interleave — the documented deferred-rewrite caveat —
	// so exactly-once-per-transaction only holds for serial transactions,
	// which TestE5 checks.)
	if d := deferredRuns.Load(); d < 1 || d > c {
		t.Fatalf("deferred runs=%d committed=%d", d, c)
	}
	// Immediate runs at least once per sell of committed txns (aborted
	// txns may also have contributed, so >=).
	if immediateRuns.Load() < committedSells.Load() {
		t.Fatalf("immediate runs=%d < %d", immediateRuns.Load(), committedSells.Load())
	}
	if nestedRuns.Load() == 0 {
		t.Fatal("nested rule never ran")
	}
	// The event graph must be empty at quiescence: every transaction
	// family was flushed.
	stats := db.Stats()
	if stats.Signals == 0 || stats.RuleFires == 0 {
		t.Fatalf("stats=%+v", stats)
	}
}
