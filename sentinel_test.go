package sentinel_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	sentinel "repro"
	"repro/internal/ged"
)

// openStockDB builds a database (in-memory unless dir is set) with the
// paper's STOCK class and its event interface.
func openStockDB(t *testing.T, dir string) *sentinel.Database {
	t.Helper()
	db, err := sentinel.Open(sentinel.Options{Dir: dir, AppName: "test", SerialRules: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	if err := db.Exec(`
class STOCK reactive {
    event end(e1) sell_stock(qty);
    event begin(e2) && end(e3) set_price(price);
}
event e4 = e2 and e1;
`); err != nil {
		t.Fatal(err)
	}
	stock, err := db.Class("STOCK")
	if err != nil {
		t.Fatal(err)
	}
	stock.DefineMethod(sentinel.Method{
		Name: "set_price", Params: []string{"price"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			self.Set("price", args[0])
			return nil, nil
		},
	})
	stock.DefineMethod(sentinel.Method{
		Name: "sell_stock", Params: []string{"qty"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			cur, _ := self.Get("qty").(int)
			self.Set("qty", cur-args[0].(int))
			return cur - args[0].(int), nil
		},
	})
	return db
}

// TestE9_WrapperExample reproduces §3.2.1: invoking set_price signals the
// begin and end events with the collected parameter list and the OID.
func TestE9_WrapperExample(t *testing.T) {
	db := openStockDB(t, "")
	var got []string
	var mu sync.Mutex
	db.BindAction("record", func(x *sentinel.Execution) error {
		mu.Lock()
		defer mu.Unlock()
		leaf := x.Occurrence.Leaves()[0]
		v, _ := leaf.Params.Get("price")
		got = append(got, leaf.Name, leaf.Object.String(), leaf.Modifier.String(),
			strings.TrimSpace(strings.Split(leaf.Params.String(), "=")[1]))
		_ = v
		return nil
	})
	if err := db.Exec(`rule RB(e2, true, record); rule RE(e3, true, record);`); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	obj, err := db.New(tx, "STOCK", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, obj, "set_price", 42.5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 8 {
		t.Fatalf("got=%v", got)
	}
	if got[0] != "e2" || got[2] != "begin" || got[4] != "e3" || got[6] != "end" {
		t.Fatalf("begin/end order: %v", got)
	}
	if got[1] != obj.OID.String() {
		t.Fatalf("OID param: %v", got)
	}
}

// TestE1_CompositeAndRule reproduces the class-level rule R1 on
// e4 = e2 AND e1 from §3.1.
func TestE1_CompositeAndRule(t *testing.T) {
	db := openStockDB(t, "")
	var fired int
	db.BindAction("action1", func(x *sentinel.Execution) error {
		fired++
		if len(x.Params()) != 2 {
			t.Errorf("composite params: %v", x.Params())
		}
		return nil
	})
	if err := db.Exec(`rule R1(e4, true, action1, RECENT, IMMEDIATE, 10, NOW);`); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 100})
	if _, err := db.Invoke(tx, obj, "set_price", 10.0); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("AND fired on one constituent")
	}
	if _, err := db.Invoke(tx, obj, "sell_stock", 10); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired=%d", fired)
	}
	_ = tx.Commit()
}

// TestE5_DeferredNetEffect reproduces the deferred-mode rewrite: the rule
// runs exactly once per transaction, at pre-commit, with the cumulative
// parameters of every triggering occurrence.
func TestE5_DeferredNetEffect(t *testing.T) {
	db := openStockDB(t, "")
	var runs, leaves int
	db.BindAction("sum", func(x *sentinel.Execution) error {
		runs++
		leaves = len(x.Occurrence.Leaves())
		return nil
	})
	if err := db.Exec(`rule RD(e1, true, sum, CUMULATIVE, DEFERRED);`); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 100})
	for i := 0; i < 4; i++ {
		if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 0 {
		t.Fatal("deferred ran before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("runs=%d want 1", runs)
	}
	if leaves != 6 { // begin + 4×e1 + preCommit
		t.Fatalf("leaves=%d want 6", leaves)
	}
}

// TestE11_FlushAcrossTransactions: an aborted transaction's occurrences
// must never participate in a later detection (§3.2.2(3)).
func TestE11_FlushAcrossTransactions(t *testing.T) {
	db := openStockDB(t, "")
	var fired int
	db.BindAction("boom", func(*sentinel.Execution) error { fired++; return nil })
	if err := db.Exec(`rule R(e4, true, boom);`); err != nil {
		t.Fatal(err)
	}
	tx1, _ := db.Begin()
	obj, _ := db.New(tx1, "STOCK", map[string]any{"qty": 10})
	if _, err := db.Invoke(tx1, obj, "set_price", 1.0); err != nil { // e2: initiates e4
		t.Fatal(err)
	}
	if err := tx1.Abort(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := db.Begin()
	obj2, _ := db.New(tx2, "STOCK", map[string]any{"qty": 10})
	if _, err := db.Invoke(tx2, obj2, "sell_stock", 1); err != nil { // e1: would complete e4
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("rule fired with a flushed constituent (%d)", fired)
	}
	_ = tx2.Commit()
}

// TestE12_NestedRules: a rule's action triggering another rule, run
// depth-first as nested subtransactions.
func TestE12_NestedRules(t *testing.T) {
	db := openStockDB(t, "")
	var order []string
	db.BindAction("cascade", func(x *sentinel.Execution) error {
		order = append(order, "outer")
		// Raising e2 from inside the rule (under the rule's subtxn).
		obj, err := db.New(x.Txn, "STOCK", nil)
		if err != nil {
			return err
		}
		_, err = db.Invoke(x.Txn, obj, "set_price", 5.0)
		return err
	})
	db.BindAction("inner", func(*sentinel.Execution) error {
		order = append(order, "inner")
		return nil
	})
	if err := db.Exec(`
rule Outer(e1, true, cascade);
rule Inner(e2, true, inner);
`); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 10})
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order=%v", order)
	}
	_ = tx.Commit()
}

// TestE15_TriggerModes: NOW vs PREVIOUS at the facade level.
func TestE15_TriggerModes(t *testing.T) {
	db := openStockDB(t, "")
	if err := db.Exec(`event s = e2 >> e1;`); err != nil {
		t.Fatal(err)
	}
	var keeper, nowRuns, prevRuns int
	db.BindAction("keep", func(*sentinel.Execution) error { keeper++; return nil })
	// keeper holds the chronicle context open from the start.
	if err := db.Exec(`rule Keeper(s, true, keep, CHRONICLE);`); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 10})
	if _, err := db.Invoke(tx, obj, "set_price", 1.0); err != nil { // e2 initiator
		t.Fatal(err)
	}
	db.BindAction("nowAct", func(*sentinel.Execution) error { nowRuns++; return nil })
	db.BindAction("prevAct", func(*sentinel.Execution) error { prevRuns++; return nil })
	if err := db.Exec(`
rule NowR(s, true, nowAct, CHRONICLE, NOW);
rule PrevR(s, true, prevAct, CHRONICLE, PREVIOUS);
`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil { // e1 terminator
		t.Fatal(err)
	}
	if prevRuns != 1 || nowRuns != 0 {
		t.Fatalf("prev=%d now=%d", prevRuns, nowRuns)
	}
	_ = tx.Commit()
}

// TestE7_ControlFlowPersistent drives the full Figure 2 pipeline against
// a persistent store: primitive signal → composite detection → immediate
// rule as subtransaction writing to the database → deferred rule at
// pre-commit → flush at commit → durability across reopen.
func TestE7_ControlFlowPersistent(t *testing.T) {
	dir := t.TempDir()
	db := openStockDB(t, dir)
	var auditOID sentinel.OID
	db.BindAction("audit", func(x *sentinel.Execution) error {
		// Immediate rule: create an audit object in a subtransaction.
		obj, err := db.New(x.Txn, "STOCK", map[string]any{"price": -1.0})
		if err != nil {
			return err
		}
		auditOID = obj.OID
		return db.Bind(x.Txn, "audit", obj.OID)
	})
	var deferredRan int
	db.BindAction("summarize", func(*sentinel.Execution) error { deferredRan++; return nil })
	if err := db.Exec(`
rule Audit(e3, true, audit);
rule Summarize(e3, true, summarize, CUMULATIVE, DEFERRED);
`); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 10})
	if err := db.Bind(tx, "IBM", obj.OID); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, obj, "set_price", 77.0); err != nil {
		t.Fatal(err)
	}
	if auditOID == 0 {
		t.Fatal("immediate rule did not run")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if deferredRan != 1 {
		t.Fatalf("deferred ran %d times", deferredRan)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: both the application object and the rule-created audit
	// object must be durable.
	db2 := openStockDB(t, dir)
	tx2, _ := db2.Begin()
	oid, err := db2.Resolve(tx2, "IBM")
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := db2.Load(tx2, oid)
	if err != nil || loaded.Attr("price").(float64) != 77.0 {
		t.Fatalf("application object: %v %v", loaded, err)
	}
	aOID, err := db2.Resolve(tx2, "audit")
	if err != nil || aOID != auditOID {
		t.Fatalf("audit binding: %v %v", aOID, err)
	}
	if _, err := db2.Load(tx2, aOID); err != nil {
		t.Fatalf("audit object: %v", err)
	}
	_ = tx2.Commit()
}

// TestRuleSubtransactionAbortRollsBack: a failing rule action must not
// leave partial writes, while the triggering transaction continues.
func TestRuleSubtransactionAbortRollsBack(t *testing.T) {
	dir := t.TempDir()
	db := openStockDB(t, dir)
	boom := func(x *sentinel.Execution) error {
		obj, err := db.New(x.Txn, "STOCK", nil)
		if err != nil {
			return err
		}
		if err := db.Bind(x.Txn, "ghost", obj.OID); err != nil {
			return err
		}
		return &strsErr{"rule failed after writing"}
	}
	db.BindAction("boom", boom)
	if err := db.Exec(`rule R(e1, true, boom);`); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 10})
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := db.Begin()
	if _, err := db.Resolve(tx2, "ghost"); err == nil {
		t.Fatal("aborted rule's write survived")
	}
	_ = tx2.Commit()
}

type strsErr struct{ s string }

func (e *strsErr) Error() string { return e.s }

// TestE13_GlobalEvents: inter-application composite events through the
// GED, with a detached rule at the subscribing application.
func TestE13_GlobalEvents(t *testing.T) {
	server := ged.NewServer(nil)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	// Global composite: sale in app A AND price change in app B.
	if _, err := server.Det.DefineExplicit("e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Det.DefineExplicit("e3"); err != nil {
		t.Fatal(err)
	}
	a, _ := server.Det.Lookup("e1")
	b, _ := server.Det.Lookup("e3")
	if _, err := server.Det.And("global_sale_and_price", a, b); err != nil {
		t.Fatal(err)
	}

	mk := func(name string) *sentinel.Database {
		db, err := sentinel.Open(sentinel.Options{AppName: name, GEDAddr: addr, SerialRules: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = db.Close() })
		if err := db.Exec(`
class STOCK reactive {
    event end(e1) sell_stock(qty);
    event begin(e2) && end(e3) set_price(price);
}
`); err != nil {
			t.Fatal(err)
		}
		c, _ := db.Class("STOCK")
		c.DefineMethod(sentinel.Method{Name: "sell_stock", Params: []string{"qty"}, Mutates: true,
			Body: func(self *sentinel.Self, args []any) (any, error) { return nil, nil }})
		c.DefineMethod(sentinel.Method{Name: "set_price", Params: []string{"price"}, Mutates: true,
			Body: func(self *sentinel.Self, args []any) (any, error) { return nil, nil }})
		return db
	}
	appA := mk("appA")
	appB := mk("appB")
	if err := appA.ShareEvent("e1"); err != nil {
		t.Fatal(err)
	}
	if err := appB.ShareEvent("e3"); err != nil {
		t.Fatal(err)
	}
	detected := make(chan []string, 1)
	if err := appA.OnGlobalEvent("global_sale_and_price", sentinel.Recent,
		func(x *sentinel.Execution) error {
			var apps []string
			for _, l := range x.Occurrence.Leaves() {
				apps = append(apps, l.App)
			}
			select {
			case detected <- apps:
			default:
			}
			return nil
		}); err != nil {
		t.Fatal(err)
	}

	txA, _ := appA.Begin()
	sA, _ := appA.New(txA, "STOCK", nil)
	if _, err := appA.Invoke(txA, sA, "sell_stock", 5); err != nil {
		t.Fatal(err)
	}
	txB, _ := appB.Begin()
	sB, _ := appB.New(txB, "STOCK", nil)
	if _, err := appB.Invoke(txB, sB, "set_price", 9.0); err != nil {
		t.Fatal(err)
	}

	select {
	case apps := <-detected:
		seen := map[string]bool{}
		for _, a := range apps {
			seen[a] = true
		}
		if !seen["appA"] || !seen["appB"] {
			t.Fatalf("global composite constituents from %v", apps)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("global event never detected")
	}
	_ = txA.Commit()
	_ = txB.Commit()
}

func TestExplicitEventsAndTemporalRules(t *testing.T) {
	db, err := sentinel.Open(sentinel.Options{SerialRules: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineExplicitEvent("tick_src"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`event late = tick_src + 100;`); err != nil {
		t.Fatal(err)
	}
	var fired int
	db.BindAction("onLate", func(*sentinel.Execution) error { fired++; return nil })
	if err := db.Exec(`rule RL(late, true, onLate);`); err != nil {
		t.Fatal(err)
	}
	if err := db.RaiseEvent(nil, "tick_src", nil); err != nil {
		t.Fatal(err)
	}
	db.AdvanceTime(99)
	if fired != 0 {
		t.Fatal("temporal rule fired early")
	}
	db.AdvanceTime(101)
	if fired != 1 {
		t.Fatalf("fired=%d", fired)
	}
	if db.Now() < 101 {
		t.Fatalf("Now=%d", db.Now())
	}
}

func TestDebuggerAndDOT(t *testing.T) {
	db := openStockDB(t, "")
	dbg := db.AttachDebugger(0)
	db.BindAction("noop", func(*sentinel.Execution) error { return nil })
	if err := db.Exec(`rule R(e4, true, noop);`); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 5})
	if _, err := db.Invoke(tx, obj, "set_price", 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()

	counts := dbg.CountByKind()
	if len(counts) == 0 {
		t.Fatal("debugger recorded nothing")
	}
	var timeline bytes.Buffer
	if err := dbg.Timeline(&timeline); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"signal", "detect", "notify"} {
		if !strings.Contains(timeline.String(), want) {
			t.Errorf("timeline missing %q:\n%s", want, timeline.String())
		}
	}
	var dot bytes.Buffer
	if err := db.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph eventgraph") || !strings.Contains(dot.String(), "->") {
		t.Fatalf("dot output:\n%s", dot.String())
	}
}

func TestRuleLifecycleAtFacade(t *testing.T) {
	db := openStockDB(t, "")
	var runs int
	db.BindAction("count", func(*sentinel.Execution) error { runs++; return nil })
	if err := db.Exec(`rule R(e1, true, count);`); err != nil {
		t.Fatal(err)
	}
	r, err := db.GetRule("R")
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 10})
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatal(err)
	}
	r.Disable()
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Enable(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runs=%d", runs)
	}
	if err := db.DropRule("R"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("dropped rule ran: %d", runs)
	}
	_ = tx.Commit()
}

func TestStringAndStats(t *testing.T) {
	db := openStockDB(t, "")
	if !strings.Contains(db.String(), "in-memory") {
		t.Fatalf("String=%q", db.String())
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 1})
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if db.Stats().Signals == 0 {
		t.Fatal("no signals counted")
	}
}
