package sentinel

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestReplicationOptionValidation(t *testing.T) {
	if _, err := Open(Options{Dir: t.TempDir(), ReplAddr: ":0", ReplicaOf: "localhost:1"}); err == nil {
		t.Fatal("ReplAddr+ReplicaOf accepted")
	}
	if _, err := Open(Options{ReplAddr: ":0"}); err == nil {
		t.Fatal("ReplAddr without Dir accepted")
	}
	if _, err := Open(Options{ReplicaOf: "localhost:1"}); err == nil {
		t.Fatal("ReplicaOf without Dir accepted")
	}
}

func TestFacadeReplicationAndPromote(t *testing.T) {
	leader, err := Open(Options{Dir: t.TempDir(), PoolSize: 32, ReplAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if leader.ReplAddr() == "" {
		t.Fatal("leader reports no repl address")
	}

	follower, err := Open(Options{
		Dir: t.TempDir(), PoolSize: 32, ReplicaOf: leader.ReplAddr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	// Schema lives in code: both sides define the class.
	for _, db := range []*Database{leader, follower} {
		if _, err := db.DefineClass("STOCK", "", false); err != nil {
			t.Fatal(err)
		}
	}

	tx, err := leader.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := leader.New(tx, "STOCK", map[string]any{"price": 42.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Bind(tx, "ACME", obj.OID); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Writes on the follower are refused while it follows.
	if _, err := follower.Begin(); !errors.Is(err, ErrFollowerReadOnly) {
		t.Fatalf("follower Begin: got %v, want ErrFollowerReadOnly", err)
	}

	// The replicated object becomes visible to follower snapshot reads.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stx, err := follower.BeginSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		oid, rerr := follower.Resolve(stx, "ACME")
		var inst *Instance
		if rerr == nil {
			inst, rerr = follower.Load(stx, oid)
		}
		_ = stx.Commit()
		if rerr == nil {
			if got := inst.Attr("price").(float64); got != 42.0 {
				t.Fatalf("follower read price %v, want 42", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicated object never became visible: %v", rerr)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The replication metrics are exported.
	var text strings.Builder
	for _, s := range follower.Metrics().Snapshot() {
		text.WriteString(s.Name)
		text.WriteByte('\n')
	}
	for _, want := range []string{
		"sentinel_repl_apply_records_total",
		"sentinel_repl_connected",
		"sentinel_repl_failover_seconds",
	} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("follower metrics missing %s", want)
		}
	}
	var leaderText strings.Builder
	for _, s := range leader.Metrics().Snapshot() {
		leaderText.WriteString(s.Name)
		leaderText.WriteByte('\n')
	}
	for _, want := range []string{
		"sentinel_repl_ship_records_total",
		"sentinel_repl_lag_records",
		"sentinel_repl_sessions",
	} {
		if !strings.Contains(leaderText.String(), want) {
			t.Fatalf("leader metrics missing %s", want)
		}
	}

	// Failover: the leader goes away, the follower takes over.
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := follower.Promote(); err != nil {
		t.Fatal(err)
	}
	if _, err := follower.Promote(); !errors.Is(err, ErrNotReplica) {
		t.Fatalf("double promote: got %v, want ErrNotReplica", err)
	}
	wtx, err := follower.Begin()
	if err != nil {
		t.Fatalf("promoted database refuses writes: %v", err)
	}
	obj2, err := follower.New(wtx, "STOCK", map[string]any{"price": 7.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.Bind(wtx, "NEWCO", obj2.OID); err != nil {
		t.Fatal(err)
	}
	if err := wtx.Commit(); err != nil {
		t.Fatal(err)
	}
	rtx, err := follower.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := follower.Resolve(rtx, "ACME"); err != nil {
		t.Fatalf("pre-failover object lost: %v", err)
	}
	if _, err := follower.Resolve(rtx, "NEWCO"); err != nil {
		t.Fatalf("post-failover object missing: %v", err)
	}
	_ = rtx.Commit()
}
