// Benchmarks regenerating the quantitative side of the evaluation: the
// paper's ICDE'95 evaluation is a functionality matrix (no numeric
// tables), so each benchmark here puts a number on one mechanism the
// paper describes, in the style of the BEAST active-DBMS benchmark from
// the same research lineage. EXPERIMENTS.md maps each benchmark to its
// experiment row and records the measured shapes.
package sentinel_test

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	sentinel "repro"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/petri"
	"repro/internal/workload"
)

// benchDetector builds a detector with n primitive events e0..e(n-1) on
// class C methods m0..m(n-1).
func benchDetector(b *testing.B, n int) (*detector.Detector, []detector.Node) {
	b.Helper()
	d := detector.New()
	d.AutoFlush = false
	d.DeclareClass("C", "")
	nodes := make([]detector.Node, n)
	for i := 0; i < n; i++ {
		node, err := d.DefinePrimitive(fmt.Sprintf("e%d", i), "C", fmt.Sprintf("m%d", i), event.End, 0)
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = node
	}
	return d, nodes
}

func drainSub() detector.Subscriber {
	return detector.SubscriberFunc(func(*event.Occurrence, detector.Context) {})
}

// BenchmarkE1_PrimitiveSignal measures the wrapper-notification cost: one
// primitive event signalled through the per-class index to one subscriber.
func BenchmarkE1_PrimitiveSignal(b *testing.B) {
	d, _ := benchDetector(b, 1)
	if _, err := d.Subscribe("e0", detector.Recent, drainSub()); err != nil {
		b.Fatal(err)
	}
	params := event.NewParams("price", 42.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SignalMethod("C", "m0", event.End, 1, params, 1)
	}
}

// BenchmarkE1_PrimitiveSignalNoSubscriber measures the cost when nothing
// listens — the demand-driven design should make this nearly free.
func BenchmarkE1_PrimitiveSignalNoSubscriber(b *testing.B) {
	d, _ := benchDetector(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SignalMethod("C", "m0", event.End, 1, nil, 1)
	}
}

// BenchmarkE1_PrimitiveSignalParallel drives the subscribed signal path
// from concurrent goroutines (run with -cpu 1,4,8 to see scaling): the
// admission check is lock-free, but delivery serializes on the graph
// mutex, so this measures contention on the consumed-signal path.
func BenchmarkE1_PrimitiveSignalParallel(b *testing.B) {
	d, _ := benchDetector(b, 1)
	if _, err := d.Subscribe("e0", detector.Recent, drainSub()); err != nil {
		b.Fatal(err)
	}
	params := event.NewParams("price", 42.0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d.SignalMethod("C", "m0", event.End, 1, params, 1)
		}
	})
}

// BenchmarkE1_PrimitiveSignalNoSubscriberParallel is the headline case for
// the lock-free fast path: concurrent signallers of an unconsumed event
// never touch the graph mutex, so throughput should scale with -cpu.
func BenchmarkE1_PrimitiveSignalNoSubscriberParallel(b *testing.B) {
	d, _ := benchDetector(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d.SignalMethod("C", "m0", event.End, 1, nil, 1)
		}
	})
}

// benchDisjointExprs builds n independent SEQ expressions — each on its own
// class with its own two primitive events, so no two expressions share a
// node — and subscribes each in RECENT context. It returns the detector.
func benchDisjointExprs(b *testing.B, n int) *detector.Detector {
	b.Helper()
	d := detector.New()
	d.AutoFlush = false
	for i := 0; i < n; i++ {
		class := fmt.Sprintf("C%d", i)
		d.DeclareClass(class, "")
		a, err := d.DefinePrimitive(fmt.Sprintf("a%d", i), class, "m0", event.End, 0)
		mustNoErr(b, err)
		z, err := d.DefinePrimitive(fmt.Sprintf("b%d", i), class, "m1", event.End, 0)
		mustNoErr(b, err)
		name := fmt.Sprintf("s%d", i)
		if _, err := d.Seq(name, a, z); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Subscribe(name, detector.Recent, drainSub()); err != nil {
			b.Fatal(err)
		}
	}
	return d
}

// BenchmarkE1_ParallelDisjoint drives N goroutines, each signalling its own
// independent SEQ expression (disjoint operator trees, disjoint classes).
// Run with -cpu 1,4,8: with the component-sharded graph each expression
// propagates under its own lock, so this is the case that scales with
// cores — contrast with BenchmarkE1_ParallelShared, where every goroutine
// hits the same expression and must serialize.
func BenchmarkE1_ParallelDisjoint(b *testing.B) {
	const nExpr = 8
	d := benchDisjointExprs(b, nExpr)
	methods := [2]string{"m0", "m1"}
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(atomic.AddInt64(&next, 1)-1) % nExpr
		class := fmt.Sprintf("C%d", i)
		j := 0
		for pb.Next() {
			d.SignalMethod(class, methods[j%2], event.End, 1, nil, uint64(i+1))
			j++
		}
	})
}

// BenchmarkE1_ParallelShared is the contention counterpart: every
// goroutine signals the same SEQ expression, so all propagation serializes
// on that expression's component lock no matter how the graph is sharded —
// the paper's ordering constraint binds nodes that share a tree.
func BenchmarkE1_ParallelShared(b *testing.B) {
	d := benchDisjointExprs(b, 1)
	methods := [2]string{"m0", "m1"}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		j := 0
		for pb.Next() {
			d.SignalMethod("C0", methods[j%2], event.End, 1, nil, 1)
			j++
		}
	})
}

// BenchmarkE2_OperatorDetect measures end-to-end detection of each binary
// operator (alternating constituent stream, RECENT context).
func BenchmarkE2_OperatorDetect(b *testing.B) {
	ops := []struct {
		name  string
		build func(d *detector.Detector, l, r detector.Node) (detector.Node, error)
	}{
		{"AND", func(d *detector.Detector, l, r detector.Node) (detector.Node, error) { return d.And("x", l, r) }},
		{"OR", func(d *detector.Detector, l, r detector.Node) (detector.Node, error) { return d.Or("x", l, r) }},
		{"SEQ", func(d *detector.Detector, l, r detector.Node) (detector.Node, error) { return d.Seq("x", l, r) }},
	}
	for _, op := range ops {
		b.Run(op.name, func(b *testing.B) {
			d, nodes := benchDetector(b, 2)
			if _, err := op.build(d, nodes[0], nodes[1]); err != nil {
				b.Fatal(err)
			}
			if _, err := d.Subscribe("x", detector.Recent, drainSub()); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.SignalMethod("C", fmt.Sprintf("m%d", i%2), event.End, 1, nil, 1)
			}
		})
	}
}

// BenchmarkE3_Contexts compares the four parameter contexts on the same
// SEQ expression and stream (two initiators per terminator, so context
// storage policies differ).
func BenchmarkE3_Contexts(b *testing.B) {
	for _, ctx := range detector.Contexts() {
		b.Run(ctx.String(), func(b *testing.B) {
			d, nodes := benchDetector(b, 2)
			if _, err := d.Seq("x", nodes[0], nodes[1]); err != nil {
				b.Fatal(err)
			}
			if _, err := d.Subscribe("x", ctx, drainSub()); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := "m0"
				if i%3 == 2 {
					m = "m1"
				}
				d.SignalMethod("C", m, event.End, 1, nil, 1)
			}
		})
	}
}

// BenchmarkE4_OnlineVsBatch compares online signalling against event-log
// replay of the same stream.
func BenchmarkE4_OnlineVsBatch(b *testing.B) {
	const streamLen = 1000
	build := func() *detector.Detector {
		d, nodes := benchDetector(b, 2)
		if _, err := d.Seq("x", nodes[0], nodes[1]); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Subscribe("x", detector.Chronicle, drainSub()); err != nil {
			b.Fatal(err)
		}
		return d
	}
	b.Run("online", func(b *testing.B) {
		d := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.SignalMethod("C", fmt.Sprintf("m%d", i%2), event.End, 1, nil, 1)
		}
	})
	b.Run("batch", func(b *testing.B) {
		// Record a fixed stream once, replay it repeatedly.
		var recorded recordedLog
		rec := build()
		log := recorded.start()
		rec.SetTracer(log.Recorder())
		for i := 0; i < streamLen; i++ {
			rec.SignalMethod("C", fmt.Sprintf("m%d", i%2), event.End, 1, nil, 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N/streamLen+1; i++ {
			d := build()
			if _, err := detector.Replay(recorded.reader(), d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("signalbatch", func(b *testing.B) {
		// The same stream injected through SignalBatch directly: one graph
		// lock per stream instead of one per occurrence, and no gob
		// round-trip, isolating the batching win from the decode cost.
		stream := make([]event.Occurrence, streamLen)
		for i := range stream {
			stream[i] = event.Occurrence{
				Kind:     event.KindMethod,
				Class:    "C",
				Method:   fmt.Sprintf("m%d", i%2),
				Modifier: event.End,
				Object:   1,
				Txn:      1,
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N/streamLen+1; i++ {
			d := build()
			if _, err := d.SignalBatch(stream); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5_Coupling compares immediate vs deferred rule execution for a
// transaction with 10 triggering events.
func BenchmarkE5_Coupling(b *testing.B) {
	for _, mode := range []string{"IMMEDIATE", "DEFERRED"} {
		b.Run(mode, func(b *testing.B) {
			db, err := sentinel.Open(sentinel.Options{AppName: "bench", SerialRules: true})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			setupStock(b, db)
			db.BindAction("noop", func(*sentinel.Execution) error { return nil })
			if err := db.Exec(fmt.Sprintf(`rule R(e1, true, noop, CUMULATIVE, %s);`, mode)); err != nil {
				b.Fatal(err)
			}
			tx0, _ := db.Begin()
			obj, _ := db.New(tx0, "STOCK", map[string]any{"qty": 1 << 30})
			_ = tx0.Commit()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, _ := db.Begin()
				for j := 0; j < 10; j++ {
					if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
						b.Fatal(err)
					}
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6_Scheduling compares prioritized-serial against concurrent
// execution of 16 rules in one priority class, each doing a little work.
func BenchmarkE6_Scheduling(b *testing.B) {
	for _, serial := range []bool{true, false} {
		name := "concurrent"
		if serial {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			db, err := sentinel.Open(sentinel.Options{AppName: "bench", SerialRules: serial, Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			setupStock(b, db)
			work := func(*sentinel.Execution) error {
				s := 0
				for i := 0; i < 20000; i++ {
					s += i
				}
				_ = s
				return nil
			}
			for i := 0; i < 16; i++ {
				name := fmt.Sprintf("busy%d", i)
				db.BindAction(name, work)
				if err := db.Exec(fmt.Sprintf(`rule R%d(e1, true, %s, RECENT, IMMEDIATE, 5);`, i, name)); err != nil {
					b.Fatal(err)
				}
			}
			tx0, _ := db.Begin()
			obj, _ := db.New(tx0, "STOCK", map[string]any{"qty": 1 << 30})
			_ = tx0.Commit()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, _ := db.Begin()
				if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10_SharedGraph compares R rules sharing one event graph (the
// paper's design) against R disjoint copies of the same expression — the
// node-count argument of §3.1.
func BenchmarkE10_SharedGraph(b *testing.B) {
	const nRules = 16
	b.Run("shared", func(b *testing.B) {
		d, nodes := benchDetector(b, 2)
		if _, err := d.And("x", nodes[0], nodes[1]); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < nRules; i++ {
			if _, err := d.Subscribe("x", detector.Recent, drainSub()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.SignalMethod("C", fmt.Sprintf("m%d", i%2), event.End, 1, nil, 1)
		}
	})
	b.Run("duplicated", func(b *testing.B) {
		d, nodes := benchDetector(b, 2)
		for i := 0; i < nRules; i++ {
			name := fmt.Sprintf("x%d", i)
			if _, err := d.And(name, nodes[0], nodes[1]); err != nil {
				b.Fatal(err)
			}
			if _, err := d.Subscribe(name, detector.Recent, drainSub()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.SignalMethod("C", fmt.Sprintf("m%d", i%2), event.End, 1, nil, 1)
		}
	})
}

// BenchmarkE12_NestedDepth measures cascaded rule execution at several
// nesting depths (each rule raises the next event).
func BenchmarkE12_NestedDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			db, err := sentinel.Open(sentinel.Options{AppName: "bench", SerialRules: true})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			for i := 0; i <= depth; i++ {
				if err := db.DefineExplicitEvent(fmt.Sprintf("lvl%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < depth; i++ {
				next := fmt.Sprintf("lvl%d", i+1)
				name := fmt.Sprintf("cascade%d", i)
				db.BindAction(name, func(x *sentinel.Execution) error {
					return db.RaiseEventFrom(x, next, nil)
				})
				if err := db.Exec(fmt.Sprintf(`rule R%d(lvl%d, true, %s);`, i, i, name)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, _ := db.Begin()
				if err := db.RaiseEvent(tx, "lvl0", nil); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14_GraphVsPetri compares the Sentinel event graph against the
// SAMOS-style Petri-net baseline on identical streams: a single SEQ, and
// a fan of 8 expressions sharing one subexpression (where the event graph
// shares nodes and the net cannot).
func BenchmarkE14_GraphVsPetri(b *testing.B) {
	b.Run("single/graph", func(b *testing.B) {
		d, nodes := benchDetector(b, 2)
		if _, err := d.Seq("x", nodes[0], nodes[1]); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Subscribe("x", detector.Chronicle, drainSub()); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.SignalMethod("C", fmt.Sprintf("m%d", i%2), event.End, 1, nil, 1)
		}
	})
	b.Run("single/petri", func(b *testing.B) {
		n := petri.New()
		mustNoErr(b, n.AddPrimitive("e0"))
		mustNoErr(b, n.AddPrimitive("e1"))
		mustNoErr(b, n.AddSeq("x", "e0", "e1"))
		mustNoErr(b, n.Subscribe("x", func(*event.Occurrence) {}))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			occ := &event.Occurrence{Name: fmt.Sprintf("e%d", i%2), Seq: uint64(i + 1)}
			if err := n.Signal(occ); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sharedfan/graph", func(b *testing.B) {
		d, nodes := benchDetector(b, 10)
		shared, err := d.And("shared", nodes[0], nodes[1])
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("f%d", i)
			if _, err := d.Seq(name, shared, nodes[2+i]); err != nil {
				b.Fatal(err)
			}
			if _, err := d.Subscribe(name, detector.Chronicle, drainSub()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.SignalMethod("C", fmt.Sprintf("m%d", i%10), event.End, 1, nil, 1)
		}
	})
	b.Run("sharedfan/petri", func(b *testing.B) {
		// The net cannot share the (e0 ∧ e1) subexpression: each fan
		// expression duplicates the AND subnet with its own copies of the
		// input places, and the application must deposit every e0/e1
		// occurrence into all eight copies — the real cost of having no
		// node sharing.
		n := petri.New()
		for i := 0; i < 8; i++ {
			mustNoErr(b, n.AddPrimitive(fmt.Sprintf("e0@%d", i)))
			mustNoErr(b, n.AddPrimitive(fmt.Sprintf("e1@%d", i)))
			mustNoErr(b, n.AddPrimitive(fmt.Sprintf("t@%d", i)))
			mustNoErr(b, n.AddAnd(fmt.Sprintf("and%d", i), fmt.Sprintf("e0@%d", i), fmt.Sprintf("e1@%d", i)))
			mustNoErr(b, n.AddSeq(fmt.Sprintf("f%d", i), fmt.Sprintf("and%d", i), fmt.Sprintf("t@%d", i)))
			mustNoErr(b, n.Subscribe(fmt.Sprintf("f%d", i), func(*event.Occurrence) {}))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seq := uint64(i + 1)
			switch m := i % 10; {
			case m < 2: // e0 or e1: feed every duplicated subnet
				for j := 0; j < 8; j++ {
					occ := &event.Occurrence{Name: fmt.Sprintf("e%d@%d", m, j), Seq: seq}
					if err := n.Signal(occ); err != nil {
						b.Fatal(err)
					}
				}
			default: // one of the 8 distinct terminators
				occ := &event.Occurrence{Name: fmt.Sprintf("t@%d", m-2), Seq: seq}
				if err := n.Signal(occ); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkE16_StorageTxn measures the storage substrate: small
// transactions of 4 writes, with and without rule machinery.
func BenchmarkE16_StorageTxn(b *testing.B) {
	db, err := sentinel.Open(sentinel.Options{Dir: b.TempDir(), AppName: "bench", PoolSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	setupStock(b, db)
	tx0, _ := db.Begin()
	obj, _ := db.New(tx0, "STOCK", map[string]any{"qty": 1 << 30})
	_ = tx0.Commit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin()
		for j := 0; j < 4; j++ {
			if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md §5) ----------------------------------------------

// BenchmarkAblation_ClassIndex: the per-class primitive-event index vs the
// cost of signalling a class with many irrelevant events defined on other
// classes (which the index skips entirely).
func BenchmarkAblation_ClassIndex(b *testing.B) {
	for _, otherClasses := range []int{0, 64, 512} {
		b.Run(fmt.Sprintf("otherClasses%d", otherClasses), func(b *testing.B) {
			d := detector.New()
			d.AutoFlush = false
			d.DeclareClass("C", "")
			if _, err := d.DefinePrimitive("e", "C", "m", event.End, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := d.Subscribe("e", detector.Recent, drainSub()); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < otherClasses; i++ {
				cls := fmt.Sprintf("X%d", i)
				d.DeclareClass(cls, "")
				if _, err := d.DefinePrimitive(fmt.Sprintf("xe%d", i), cls, "m", event.End, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.SignalMethod("C", "m", event.End, 1, nil, 1)
			}
		})
	}
}

// BenchmarkAblation_ParamChainLength: composite parameter assembly cost as
// the cumulative constituent count grows — only slice headers move, so
// this should stay near-linear with a small constant.
func BenchmarkAblation_ParamChainLength(b *testing.B) {
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("constituents%d", k), func(b *testing.B) {
			d, nodes := benchDetector(b, 2)
			if _, err := d.Seq("x", nodes[0], nodes[1]); err != nil {
				b.Fatal(err)
			}
			var last *event.Occurrence
			if _, err := d.Subscribe("x", detector.Cumulative,
				detector.SubscriberFunc(func(o *event.Occurrence, _ detector.Context) { last = o })); err != nil {
				b.Fatal(err)
			}
			params := event.NewParams("v", 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < k; j++ {
					d.SignalMethod("C", "m0", event.End, 1, params, 1)
				}
				d.SignalMethod("C", "m1", event.End, 1, params, 1)
				if last == nil || len(last.AllParams()) != k+1 {
					b.Fatalf("composite params: %d", len(last.AllParams()))
				}
				last = nil
			}
		})
	}
}

// BenchmarkWorkloadMixed drives the BEAST-style mixed workload (random
// classes, methods, transaction boundaries) through a detector with a SEQ
// and an AND expression subscribed in two contexts — the "whole detector"
// number.
func BenchmarkWorkloadMixed(b *testing.B) {
	d := detector.New()
	cfg := workload.Default(1)
	for c := 0; c < cfg.Classes; c++ {
		d.DeclareClass(workload.ClassName(c), "")
	}
	e0, err := d.DefinePrimitive("w0", workload.ClassName(0), workload.MethodName(0), event.End, 0)
	mustNoErr(b, err)
	e1, err := d.DefinePrimitive("w1", workload.ClassName(1), workload.MethodName(1), event.End, 0)
	mustNoErr(b, err)
	_, err = d.Seq("wseq", e0, e1)
	mustNoErr(b, err)
	_, err = d.And("wand", e0, e1)
	mustNoErr(b, err)
	for _, ctx := range []detector.Context{detector.Recent, detector.Chronicle} {
		_, err = d.Subscribe("wseq", ctx, drainSub())
		mustNoErr(b, err)
		_, err = d.Subscribe("wand", ctx, drainSub())
		mustNoErr(b, err)
	}
	gen := workload.New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	workload.Apply(gen, d, b.N)
}

// --- helpers -----------------------------------------------------------------

func setupStock(b *testing.B, db *sentinel.Database) {
	b.Helper()
	if err := db.Exec(`
class STOCK reactive {
    event end(e1) sell_stock(qty);
    event begin(e2) && end(e3) set_price(price);
}
`); err != nil {
		b.Fatal(err)
	}
	stock, err := db.Class("STOCK")
	if err != nil {
		b.Fatal(err)
	}
	stock.DefineMethod(sentinel.Method{
		Name: "sell_stock", Params: []string{"qty"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			cur, _ := self.Get("qty").(int)
			self.Set("qty", cur-args[0].(int))
			return nil, nil
		},
	})
	stock.DefineMethod(sentinel.Method{
		Name: "set_price", Params: []string{"price"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			self.Set("price", args[0])
			return nil, nil
		},
	})
}

func mustNoErr(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

// recordedLog buffers one recorded event stream for repeated replay.
type recordedLog struct{ buf bytes.Buffer }

func (r *recordedLog) start() *detector.EventLog { return detector.NewEventLog(&r.buf) }

func (r *recordedLog) reader() *bytes.Reader { return bytes.NewReader(r.buf.Bytes()) }
