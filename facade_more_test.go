package sentinel_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	sentinel "repro"
	"repro/internal/lockmgr"
)

// TestConcurrentTransactionsSerialize: two transactions invoking a
// mutating method on the same object are serialized by the object lock;
// the final state reflects both. Load-then-Invoke is an S→X lock upgrade,
// so concurrent workers can deadlock; the lock manager aborts a victim,
// and the worker retries its transaction — the standard client response.
func TestConcurrentTransactionsSerialize(t *testing.T) {
	db := openStockDB(t, t.TempDir())
	setup, _ := db.Begin()
	obj, err := db.New(setup, "STOCK", map[string]any{"qty": 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	const workers, per = 4, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	sellOne := func() error {
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		loaded, err := db.Load(tx, obj.OID)
		if err != nil {
			_ = tx.Abort()
			return err
		}
		if _, err := db.Invoke(tx, loaded, "sell_stock", 1); err != nil {
			_ = tx.Abort()
			return err
		}
		return tx.Commit()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for {
					err := sellOne()
					if err == nil {
						break
					}
					if errors.Is(err, lockmgr.ErrDeadlock) {
						continue // aborted as a deadlock victim: retry
					}
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	check, _ := db.Begin()
	final, err := db.Load(check, obj.OID)
	if err != nil {
		t.Fatal(err)
	}
	if got := final.Attr("qty").(int); got != 1000-workers*per {
		t.Fatalf("qty=%d want %d (lost updates)", got, 1000-workers*per)
	}
	_ = check.Commit()
}

// TestVisibilityThroughFacade: class-body rules with visibilities,
// end to end through Exec and reactive dispatch.
func TestVisibilityThroughFacade(t *testing.T) {
	db, err := sentinel.Open(sentinel.Options{SerialRules: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var priv, prot []string
	db.BindAction("privAct", func(x *sentinel.Execution) error {
		priv = append(priv, x.Occurrence.Leaves()[0].Class)
		return nil
	})
	db.BindAction("protAct", func(x *sentinel.Execution) error {
		prot = append(prot, x.Occurrence.Leaves()[0].Class)
		return nil
	})
	if err := db.Exec(`
class SECURITY reactive {
    event end(traded) trade(amount);
}
class STOCK extends SECURITY reactive {
    private   rule OnlyStock(traded, true, privAct);
    protected rule Subtree(traded, true, protAct);
}
class TECH_STOCK extends STOCK reactive { }
`); err != nil {
		t.Fatal(err)
	}
	sec, _ := db.Class("SECURITY")
	sec.DefineMethod(sentinel.Method{
		Name: "trade", Params: []string{"amount"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) { return nil, nil },
	})
	tx, _ := db.Begin()
	for _, cls := range []string{"SECURITY", "STOCK", "TECH_STOCK"} {
		obj, err := db.New(tx, cls, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Invoke(tx, obj, "trade", 5); err != nil {
			t.Fatal(err)
		}
	}
	_ = tx.Commit()
	if len(priv) != 1 || priv[0] != "STOCK" {
		t.Fatalf("private rule ran for %v", priv)
	}
	if len(prot) != 2 || prot[0] != "STOCK" || prot[1] != "TECH_STOCK" {
		t.Fatalf("protected rule ran for %v", prot)
	}
	r, err := db.GetRule("OnlyStock")
	if err != nil || r.Class() != "STOCK" {
		t.Fatalf("rule introspection: %v %v", r, err)
	}
}

// TestRecordAndReplayThroughFacade: record an online stream, replay it in
// a second database where a rule was defined only afterwards.
func TestRecordAndReplayThroughFacade(t *testing.T) {
	online := openStockDB(t, "")
	var buf bytes.Buffer
	stop, err := online.RecordEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := online.Begin()
	obj, _ := online.New(tx, "STOCK", map[string]any{"qty": 10})
	for i := 0; i < 3; i++ {
		if _, err := online.Invoke(tx, obj, "sell_stock", 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	stop()
	if buf.Len() == 0 {
		t.Fatal("nothing recorded")
	}

	batch := openStockDB(t, "")
	var runs int
	batch.BindAction("onSell", func(*sentinel.Execution) error { runs++; return nil })
	if err := batch.Exec(`rule Post(e1, true, onSell);`); err != nil {
		t.Fatal(err)
	}
	n, err := batch.ReplayLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || runs != 3 {
		t.Fatalf("replayed=%d rule runs=%d", n, runs)
	}
}

// TestDeadlockBrokenAcrossRuleSubtransactions: two concurrent transactions
// locking two objects in opposite orders; the deadlock must be detected
// and one side aborted, after which the other completes.
func TestDeadlockBrokenAcrossTransactions(t *testing.T) {
	db := openStockDB(t, "")
	setup, _ := db.Begin()
	a, _ := db.New(setup, "STOCK", map[string]any{"qty": 10})
	b, _ := db.New(setup, "STOCK", map[string]any{"qty": 10})
	_ = setup.Commit()

	start := make(chan struct{})
	results := make(chan error, 2)
	run := func(first, second *sentinel.Instance) {
		<-start
		tx, err := db.Begin()
		if err != nil {
			results <- err
			return
		}
		if _, err := db.Invoke(tx, first, "sell_stock", 1); err != nil {
			_ = tx.Abort()
			results <- err
			return
		}
		if _, err := db.Invoke(tx, second, "sell_stock", 1); err != nil {
			_ = tx.Abort()
			results <- err
			return
		}
		results <- tx.Commit()
	}
	go run(a, b)
	go run(b, a)
	close(start)
	var failures int
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			failures++
			if !strings.Contains(err.Error(), "deadlock") && !strings.Contains(err.Error(), "timed out") {
				t.Fatalf("unexpected failure: %v", err)
			}
		}
	}
	if failures == 2 {
		t.Fatal("both transactions failed; livelock instead of victim selection")
	}
}

// TestManyRulesManyEvents: a denser schema driving many rules in one
// transaction; sanity for bookkeeping at scale.
func TestManyRulesManyEvents(t *testing.T) {
	db := openStockDB(t, "")
	var mu sync.Mutex
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("act%d", i)
		db.BindAction(name, func(*sentinel.Execution) error {
			mu.Lock()
			counts[name]++
			mu.Unlock()
			return nil
		})
		ev := "e1"
		if i%2 == 1 {
			ev = "e3"
		}
		if err := db.Exec(fmt.Sprintf(`rule R%d(%s, true, %s, RECENT, IMMEDIATE, %d);`, i, ev, name, i%5)); err != nil {
			t.Fatal(err)
		}
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 100})
	for i := 0; i < 5; i++ {
		if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Invoke(tx, obj, "set_price", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = tx.Commit()
	mu.Lock()
	defer mu.Unlock()
	for name, n := range counts {
		if n != 5 {
			t.Fatalf("%s ran %d times, want 5", name, n)
		}
	}
	if len(counts) != 20 {
		t.Fatalf("only %d rules ran", len(counts))
	}
}

// TestPersistentReopenKeepsData: rules are session objects (bound to Go
// functions), but data and names survive reopen and rules can be
// redefined against them.
func TestPersistentReopenKeepsData(t *testing.T) {
	dir := t.TempDir()
	db := openStockDB(t, dir)
	var fired int
	db.BindAction("n", func(*sentinel.Execution) error { fired++; return nil })
	if err := db.Exec(`rule R(e1, true, n);`); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 50})
	if err := db.Bind(tx, "acme", obj.OID); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, obj, "sell_stock", 5); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openStockDB(t, dir)
	var fired2 int
	db2.BindAction("n", func(*sentinel.Execution) error { fired2++; return nil })
	if err := db2.Exec(`rule R(e1, true, n);`); err != nil {
		t.Fatal(err)
	}
	tx2, _ := db2.Begin()
	oid, err := db2.Resolve(tx2, "acme")
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := db2.Load(tx2, oid)
	if err != nil || loaded.Attr("qty").(int) != 45 {
		t.Fatalf("reloaded qty: %v %v", loaded, err)
	}
	if _, err := db2.Invoke(tx2, loaded, "sell_stock", 5); err != nil {
		t.Fatal(err)
	}
	_ = tx2.Commit()
	if fired2 != 1 {
		t.Fatalf("redefined rule fired %d times", fired2)
	}
}

// TestStartClockFiresTemporalRules: the wall-clock pump drives temporal
// rules without explicit AdvanceTime calls.
func TestStartClockFiresTemporalRules(t *testing.T) {
	db := openStockDB(t, "")
	if err := db.Exec(`event soon = e1 + 3;`); err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{}, 1)
	db.BindAction("ping", func(*sentinel.Execution) error {
		select {
		case fired <- struct{}{}:
		default:
		}
		return nil
	})
	if err := db.Exec(`rule R(soon, true, ping);`); err != nil {
		t.Fatal(err)
	}
	stop := db.StartClock(1e6) // 1ms per unit
	defer stop()
	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", map[string]any{"qty": 5})
	if _, err := db.Invoke(tx, obj, "sell_stock", 1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-timeAfter(5):
		t.Fatal("temporal rule never fired under StartClock")
	}
	_ = tx.Commit()
}

// timeAfter returns a channel firing after n seconds (helper avoiding a
// direct time import clash in this file).
func timeAfter(seconds int) <-chan time.Time {
	return time.After(time.Duration(seconds) * time.Second)
}
