// Workflow demonstrates inter-application (global) events: an order
// application and a shipping application each run their own Sentinel
// database with a local event detector; a global event detector correlates
// events across them (order placed AND shipment booked), and the order
// application reacts with a detached rule — the cooperative-transaction
// scenario that motivates global events in the paper (§2.1).
package main

import (
	"fmt"
	"log"
	"time"

	sentinel "repro"
	"repro/internal/ged"
	"repro/internal/snoop"
)

func main() {
	// 1. Start the global event detector and define the global composite
	//    event over the names the applications will contribute.
	server := ged.NewServer(nil)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	gcomp := &snoop.Compiler{Det: server.Det}
	// The contributed primitives must exist before the composite.
	if _, err := server.Det.DefineExplicit("order_placed"); err != nil {
		log.Fatal(err)
	}
	if _, err := server.Det.DefineExplicit("shipment_booked"); err != nil {
		log.Fatal(err)
	}
	if err := gcomp.CompileSource(`event fulfillable = order_placed and shipment_booked;`); err != nil {
		log.Fatal(err)
	}

	// 2. The order application.
	orders, err := sentinel.Open(sentinel.Options{AppName: "orders", GEDAddr: addr, SerialRules: true})
	if err != nil {
		log.Fatal(err)
	}
	defer orders.Close()
	if err := orders.Exec(`
class ORDER reactive {
    event end(order_placed) place(sku, qty);
}
`); err != nil {
		log.Fatal(err)
	}
	oc, _ := orders.Class("ORDER")
	oc.DefineMethod(sentinel.Method{
		Name: "place", Params: []string{"sku", "qty"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			self.Set("sku", args[0])
			self.Set("qty", args[1])
			return nil, nil
		},
	})
	if err := orders.ShareEvent("order_placed"); err != nil {
		log.Fatal(err)
	}

	// 3. The shipping application.
	shipping, err := sentinel.Open(sentinel.Options{AppName: "shipping", GEDAddr: addr, SerialRules: true})
	if err != nil {
		log.Fatal(err)
	}
	defer shipping.Close()
	if err := shipping.Exec(`
class SHIPMENT reactive {
    event end(shipment_booked) book(carrier);
}
`); err != nil {
		log.Fatal(err)
	}
	sc, _ := shipping.Class("SHIPMENT")
	sc.DefineMethod(sentinel.Method{
		Name: "book", Params: []string{"carrier"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			self.Set("carrier", args[0])
			return nil, nil
		},
	})
	if err := shipping.ShareEvent("shipment_booked"); err != nil {
		log.Fatal(err)
	}

	// 4. The order application's detached rule on the global event: runs
	//    in its own top-level transaction when the GED detects the
	//    conjunction across applications.
	done := make(chan struct{})
	if err := orders.OnGlobalEvent("fulfillable", sentinel.Recent, func(x *sentinel.Execution) error {
		fmt.Println("detached rule at orders: order is fulfillable —")
		for _, l := range x.Occurrence.Leaves() {
			fmt.Printf("    %s from application %q %s\n", l.Name, l.App, l.Params)
		}
		close(done)
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// 5. Drive both applications in their own transactions.
	fmt.Println("-- orders: placing an order --")
	txO, _ := orders.Begin()
	order, _ := orders.New(txO, "ORDER", nil)
	if _, err := orders.Invoke(txO, order, "place", "SKU-7", 3); err != nil {
		log.Fatal(err)
	}
	if err := txO.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- shipping: booking a shipment --")
	txS, _ := shipping.Begin()
	shipment, _ := shipping.New(txS, "SHIPMENT", nil)
	if _, err := shipping.Invoke(txS, shipment, "book", "ACME-FREIGHT"); err != nil {
		log.Fatal(err)
	}
	if err := txS.Commit(); err != nil {
		log.Fatal(err)
	}

	select {
	case <-done:
		fmt.Println("done")
	case <-time.After(5 * time.Second):
		log.Fatal("global event never detected")
	}
}
