// Quickstart: open an in-memory Sentinel database, declare a reactive
// class with a primitive event, attach a rule, and watch it fire.
package main

import (
	"fmt"
	"log"

	sentinel "repro"
)

func main() {
	db, err := sentinel.Open(sentinel.Options{AppName: "quickstart", SerialRules: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The rule's action, bound by name for the specification below.
	db.BindAction("announce", func(x *sentinel.Execution) error {
		leaf := x.Occurrence.Leaves()[0]
		price, _ := leaf.Params.Get("price")
		fmt.Printf("rule %s fired: %s set price to %v\n", x.Rule.Name(), leaf.Object, price)
		return nil
	})

	// Class, event interface and rule in the Sentinel language.
	if err := db.Exec(`
class STOCK reactive {
    event begin(priced) set_price(price);
}
rule Announce(priced, true, announce);
`); err != nil {
		log.Fatal(err)
	}

	// Method bodies are ordinary Go.
	stock, err := db.Class("STOCK")
	if err != nil {
		log.Fatal(err)
	}
	stock.DefineMethod(sentinel.Method{
		Name: "set_price", Params: []string{"price"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			self.Set("price", args[0])
			return nil, nil
		},
	})

	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	ibm, err := db.New(tx, "STOCK", map[string]any{"price": 0.0})
	if err != nil {
		log.Fatal(err)
	}
	// Invoking the reactive method signals the event; the immediate rule
	// runs before Invoke returns.
	if _, err := db.Invoke(tx, ibm, "set_price", 101.25); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Invoke(tx, ibm, "set_price", 102.50); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done; price is now", ibm.Attr("price"))
}
