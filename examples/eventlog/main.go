// Eventlog demonstrates the detector's separation from the application
// (§2.3 feature iv): an online run records its primitive event stream to
// a stored event log; a second database later replays the log in batch
// mode and detects the same composite events — including ones whose rules
// were only defined after the fact.
package main

import (
	"bytes"
	"fmt"
	"log"

	sentinel "repro"
)

func setup(name string) (*sentinel.Database, *sentinel.Instance, error) {
	db, err := sentinel.Open(sentinel.Options{AppName: name, SerialRules: true})
	if err != nil {
		return nil, nil, err
	}
	if err := db.Exec(`
class SENSOR reactive {
    event end(reading) report(value);
    event end(alarm) trip();
}
`); err != nil {
		return nil, nil, err
	}
	c, _ := db.Class("SENSOR")
	c.DefineMethod(sentinel.Method{
		Name: "report", Params: []string{"value"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			self.Set("last", args[0])
			return nil, nil
		},
	})
	c.DefineMethod(sentinel.Method{
		Name: "trip", Params: nil, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) { return nil, nil },
	})
	tx, err := db.Begin()
	if err != nil {
		return nil, nil, err
	}
	sensor, err := db.New(tx, "SENSOR", nil)
	if err != nil {
		return nil, nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, nil, err
	}
	return db, sensor, nil
}

func main() {
	// ---- Online phase: run the application and record its events. ----
	online, sensor, err := setup("online")
	if err != nil {
		log.Fatal(err)
	}
	defer online.Close()

	var logBuf bytes.Buffer
	stopRecording, err := online.RecordEvents(&logBuf)
	if err != nil {
		log.Fatal(err)
	}

	tx, _ := online.Begin()
	for _, v := range []int{10, 95, 12, 99} {
		if _, err := online.Invoke(tx, sensor, "report", v); err != nil {
			log.Fatal(err)
		}
		if v > 90 {
			if _, err := online.Invoke(tx, sensor, "trip"); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	stopRecording()
	fmt.Printf("online phase recorded %d bytes of event log\n", logBuf.Len())

	// ---- Batch phase: a fresh database, a rule defined AFTER the fact,
	//      and the recorded log replayed through the detector. ----
	batch, _, err := setup("batch")
	if err != nil {
		log.Fatal(err)
	}
	defer batch.Close()
	if err := batch.Exec(`event spike_then_alarm = reading >> alarm;`); err != nil {
		log.Fatal(err)
	}
	batch.BindCondition("highReading", func(x *sentinel.Execution) bool {
		v, ok := x.Params()[0].Get("value")
		return ok && v.(int) > 90
	})
	batch.BindAction("flag", func(x *sentinel.Execution) error {
		v, _ := x.Params()[0].Get("value")
		fmt.Printf("batch analysis: alarm tripped after high reading %v\n", v)
		return nil
	})
	// RECENT pairs each alarm with the most recent reading before it.
	if err := batch.Exec(`rule Forensic(spike_then_alarm, highReading, flag, RECENT);`); err != nil {
		log.Fatal(err)
	}

	// Replaying spans the original transaction boundaries, so keep the
	// graph state across them during analysis.
	batch.Detector().AutoFlush = false
	n, err := batch.ReplayLog(&logBuf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d occurrences in batch mode\n", n)
}
