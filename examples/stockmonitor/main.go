// Stockmonitor reproduces the paper's running example (§3.1): the STOCK
// class with primitive events on sell_stock and set_price, the composite
// event e4 = e1 ^ e2, a class-level rule in CUMULATIVE context with
// DEFERRED coupling, and the class-level vs instance-level pair
// any_stk_price / set_IBM_price.
package main

import (
	"fmt"
	"log"

	sentinel "repro"
)

func main() {
	db, err := sentinel.Open(sentinel.Options{AppName: "stockmonitor", SerialRules: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Class definition with the event interface of the paper.
	if err := db.Exec(`
class STOCK reactive {
    event end(e1) sell_stock(qty);
    event begin(e2) && end(e3) set_price(price);
}
event e4 = e1 and e2;
`); err != nil {
		log.Fatal(err)
	}
	stock, _ := db.Class("STOCK")
	stock.DefineMethod(sentinel.Method{
		Name: "sell_stock", Params: []string{"qty"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			cur, _ := self.Get("qty").(int)
			self.Set("qty", cur-args[0].(int))
			return cur - args[0].(int), nil
		},
	})
	stock.DefineMethod(sentinel.Method{
		Name: "set_price", Params: []string{"price"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			self.Set("price", args[0])
			return nil, nil
		},
	})

	// Rule R1 from the paper: on e4, cumulative context, deferred mode,
	// priority 10, NOW. Its action summarizes every trade/price pair of
	// the transaction at pre-commit.
	db.BindCondition("cond1", func(x *sentinel.Execution) bool {
		return len(x.Occurrence.Leaves()) > 2 // interesting only if composite
	})
	db.BindAction("action1", func(x *sentinel.Execution) error {
		fmt.Printf("R1 (deferred, cumulative): %d constituent occurrences this transaction\n",
			len(x.Occurrence.Leaves()))
		return nil
	})
	if err := db.Exec(`rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW);`); err != nil {
		log.Fatal(err)
	}

	// Create the instances and name IBM so the instance-level event can
	// resolve it.
	setup, _ := db.Begin()
	ibm, _ := db.New(setup, "STOCK", map[string]any{"qty": 1000, "price": 100.0})
	dec, _ := db.New(setup, "STOCK", map[string]any{"qty": 500, "price": 50.0})
	if err := db.Bind(setup, "IBM", ibm.OID); err != nil {
		log.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		log.Fatal(err)
	}

	// Class-level vs instance-level primitive events on the same method
	// (§3.1): any_stk_price fires for every STOCK, set_IBM_price only for
	// the IBM object.
	if err := db.Exec(`
event any_stk_price = begin STOCK.set_price(price);
event set_IBM_price = begin STOCK("IBM").set_price(price);
`); err != nil {
		log.Fatal(err)
	}
	db.BindAction("classLevel", func(x *sentinel.Execution) error {
		fmt.Printf("  class-level rule: price change on %s\n", x.Occurrence.Leaves()[0].Object)
		return nil
	})
	db.BindAction("instanceLevel", func(x *sentinel.Execution) error {
		fmt.Println("  instance-level rule: IBM price changed!")
		return nil
	})
	if err := db.Exec(`
rule AnyPrice(any_stk_price, true, classLevel);
rule IBMPrice(set_IBM_price, true, instanceLevel);
`); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- transaction 1: price changes on two stocks --")
	tx, _ := db.Begin()
	if _, err := db.Invoke(tx, ibm, "set_price", 101.0); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Invoke(tx, dec, "set_price", 51.0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- selling stock (completes e4 = e1 ^ e2) --")
	if _, err := db.Invoke(tx, ibm, "sell_stock", 100); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- committing: deferred R1 runs now --")
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done")
}
