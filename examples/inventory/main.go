// Inventory demonstrates a persistent Sentinel database with nested rule
// triggering: withdrawing stock below a threshold triggers a reorder rule,
// whose action (creating a purchase order object) triggers an audit rule —
// rules cascading depth-first as subtransactions, all durable.
package main

import (
	"fmt"
	"log"
	"os"

	sentinel "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "sentinel-inventory-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := sentinel.Open(sentinel.Options{Dir: dir, AppName: "inventory", SerialRules: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Exec(`
class ITEM reactive {
    event end(withdrawn) withdraw(qty);
}
class PURCHASE_ORDER reactive {
    event end(ordered) place(item, qty);
}
`); err != nil {
		log.Fatal(err)
	}
	item, _ := db.Class("ITEM")
	item.DefineMethod(sentinel.Method{
		Name: "withdraw", Params: []string{"qty"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			cur, _ := self.Get("stock").(int)
			q := args[0].(int)
			if q > cur {
				return nil, fmt.Errorf("inventory: only %d in stock", cur)
			}
			self.Set("stock", cur-q)
			return cur - q, nil
		},
	})
	po, _ := db.Class("PURCHASE_ORDER")
	po.DefineMethod(sentinel.Method{
		Name: "place", Params: []string{"item", "qty"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			self.Set("item", args[0])
			self.Set("qty", args[1])
			self.Set("status", "placed")
			return nil, nil
		},
	})

	// Reorder rule: when stock drops below the threshold, place a
	// purchase order — inside the rule's subtransaction, so a failure
	// rolls it back without hurting the application's transaction.
	const threshold = 20
	db.BindCondition("belowThreshold", func(x *sentinel.Execution) bool {
		leaf := x.Occurrence.Leaves()[0]
		obj, err := db.Load(x.Txn, leaf.Object)
		if err != nil {
			return false
		}
		stock, _ := obj.Attr("stock").(int)
		return stock < threshold
	})
	db.BindAction("reorder", func(x *sentinel.Execution) error {
		leaf := x.Occurrence.Leaves()[0]
		order, err := db.New(x.Txn, "PURCHASE_ORDER", nil)
		if err != nil {
			return err
		}
		fmt.Printf("Reorder rule: stock low on %s, placing order %s\n", leaf.Object, order.OID)
		_, err = db.Invoke(x.Txn, order, "place", uint64(leaf.Object), 100)
		return err
	})
	// Audit rule: triggered by the reorder rule's own action (nested).
	db.BindAction("audit", func(x *sentinel.Execution) error {
		fmt.Printf("  Audit rule (nested, depth via cascade): order %s recorded\n",
			x.Occurrence.Leaves()[0].Object)
		return nil
	})
	// Deferred end-of-transaction summary.
	db.BindAction("summary", func(x *sentinel.Execution) error {
		fmt.Printf("Deferred summary: %d withdrawals this transaction\n",
			len(x.Occurrence.Leaves())-2) // minus begin/preCommit
		return nil
	})
	if err := db.Exec(`
rule Reorder(withdrawn, belowThreshold, reorder, RECENT, IMMEDIATE, 10);
rule Audit(ordered, true, audit, RECENT, IMMEDIATE, 5);
rule Summary(withdrawn, true, summary, CUMULATIVE, DEFERRED);
`); err != nil {
		log.Fatal(err)
	}

	setup, _ := db.Begin()
	widget, err := db.New(setup, "ITEM", map[string]any{"stock": 50})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Bind(setup, "widget", widget.OID); err != nil {
		log.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- withdrawing 15 (stock 50 -> 35, no reorder) --")
	tx, _ := db.Begin()
	if _, err := db.Invoke(tx, widget, "withdraw", 15); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- withdrawing 20 (stock 35 -> 15, reorder cascade fires) --")
	if _, err := db.Invoke(tx, widget, "withdraw", 20); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- committing (deferred summary) --")
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Show durability: reload in a fresh transaction.
	check, _ := db.Begin()
	oid, _ := db.Resolve(check, "widget")
	reloaded, err := db.Load(check, oid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final stock on disk:", reloaded.Attr("stock"))
	_ = check.Commit()
}
