package sentinel_test

import (
	"fmt"
	"log"

	sentinel "repro"
)

// Example reproduces the paper's basic flow: a reactive class, a rule on
// a primitive event, and an invocation that triggers it.
func Example() {
	db, err := sentinel.Open(sentinel.Options{SerialRules: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.BindAction("announce", func(x *sentinel.Execution) error {
		price, _ := x.Occurrence.Leaves()[0].Params.Get("price")
		fmt.Println("price set to", price)
		return nil
	})
	if err := db.Exec(`
class STOCK reactive {
    event begin(priced) set_price(price);
}
rule Announce(priced, true, announce);
`); err != nil {
		log.Fatal(err)
	}
	stock, _ := db.Class("STOCK")
	stock.DefineMethod(sentinel.Method{
		Name: "set_price", Params: []string{"price"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) {
			self.Set("price", args[0])
			return nil, nil
		},
	})

	tx, _ := db.Begin()
	ibm, _ := db.New(tx, "STOCK", nil)
	if _, err := db.Invoke(tx, ibm, "set_price", 101.25); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	// Output: price set to 101.25
}

// ExampleDatabase_Exec shows a deferred rule in cumulative context: it
// runs once per transaction, at pre-commit, with all occurrences.
func ExampleDatabase_Exec() {
	db, _ := sentinel.Open(sentinel.Options{SerialRules: true})
	defer db.Close()

	db.BindAction("summary", func(x *sentinel.Execution) error {
		fmt.Printf("transaction made %d sales\n", len(x.Occurrence.Leaves())-2)
		return nil
	})
	_ = db.Exec(`
class STOCK reactive {
    event end(sold) sell_stock(qty);
}
rule Summary(sold, true, summary, CUMULATIVE, DEFERRED);
`)
	stock, _ := db.Class("STOCK")
	stock.DefineMethod(sentinel.Method{
		Name: "sell_stock", Params: []string{"qty"}, Mutates: true,
		Body: func(self *sentinel.Self, args []any) (any, error) { return nil, nil },
	})

	tx, _ := db.Begin()
	obj, _ := db.New(tx, "STOCK", nil)
	for i := 0; i < 3; i++ {
		_, _ = db.Invoke(tx, obj, "sell_stock", 1)
	}
	fmt.Println("before commit: nothing yet")
	_ = tx.Commit()
	// Output:
	// before commit: nothing yet
	// transaction made 3 sales
}

// ExampleDatabase_DefineRule builds a composite-event rule directly in Go,
// without the specification language.
func ExampleDatabase_DefineRule() {
	db, _ := sentinel.Open(sentinel.Options{SerialRules: true})
	defer db.Close()
	_ = db.Exec(`
class ACCOUNT reactive {
    event end(deposited) deposit(amount);
    event end(withdrawn) withdraw(amount);
}
event churn = deposited >> withdrawn;
`)
	acct, _ := db.Class("ACCOUNT")
	for _, m := range []string{"deposit", "withdraw"} {
		acct.DefineMethod(sentinel.Method{
			Name: m, Params: []string{"amount"}, Mutates: true,
			Body: func(self *sentinel.Self, args []any) (any, error) { return nil, nil },
		})
	}
	_, _ = db.DefineRule(sentinel.RuleSpec{
		Name:    "Churn",
		Event:   "churn",
		Context: sentinel.Chronicle,
		Action: func(x *sentinel.Execution) error {
			fmt.Println("deposit followed by withdrawal")
			return nil
		},
	})
	tx, _ := db.Begin()
	a, _ := db.New(tx, "ACCOUNT", nil)
	_, _ = db.Invoke(tx, a, "deposit", 100)
	_, _ = db.Invoke(tx, a, "withdraw", 60)
	_ = tx.Commit()
	// Output: deposit followed by withdrawal
}
