package sentinel_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	sentinel "repro"
	"repro/internal/query"
)

func TestFacadeQueryAndIndexes(t *testing.T) {
	db := openStockDB(t, t.TempDir())

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := db.New(tx, "STOCK", map[string]any{
			"sym": fmt.Sprintf("S%02d", i), "price": float64(i), "sector": i % 4,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.CreateIndex(tx, "STOCK", "price", sentinel.OrderedIndex); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if defs := db.Indexes(); len(defs) != 1 || defs[0].Attr != "price" {
		t.Fatalf("Indexes() = %v", defs)
	}
	q := sentinel.Q{Class: "STOCK", Where: query.Between("price", 10.0, 14.0), OrderBy: "price"}
	if plan := db.ExplainQuery(q); plan[:10] != "IndexRange" {
		t.Fatalf("plan = %s", plan)
	}
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(tx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].Attrs["sym"] != "S10" || rows[4].Attrs["sym"] != "S14" {
		t.Fatalf("query rows: %+v", rows)
	}
	// Grouped aggregate through the facade.
	rows, err = db.Query(tx, sentinel.Q{Class: "STOCK", GroupBy: []string{"sector"},
		Aggs: []sentinel.Agg{{Op: query.Count}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("groups: %+v", rows)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestWhereRuleCondition exercises the declarative condition path: the
// rule's condition is EXISTS(STOCK WHERE price > 100) compiled through the
// query engine, evaluated inside the firing transaction.
func TestWhereRuleCondition(t *testing.T) {
	db := openStockDB(t, t.TempDir())
	var fired atomic.Int32
	if _, err := db.DefineRule(sentinel.RuleSpec{
		Name:  "expensive",
		Event: "e3", // end set_price(price)
		Where: &sentinel.RuleWhere{Class: "STOCK", Pred: query.Gt("price", 100.0)},
		Action: func(x *sentinel.Execution) error {
			fired.Add(1)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex(tx, "STOCK", "price", sentinel.OrderedIndex); err != nil {
		t.Fatal(err)
	}
	obj, err := db.New(tx, "STOCK", map[string]any{"price": 5.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Invoke(tx, obj, "set_price", 50.0); err != nil {
		t.Fatal(err)
	}
	if got := fired.Load(); got != 0 {
		t.Fatalf("rule fired below threshold: %d", got)
	}
	if _, err := db.Invoke(tx, obj, "set_price", 150.0); err != nil {
		t.Fatal(err)
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("rule firings above threshold: %d, want 1", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ranges, _, _, _ := db.QueryManager().Stats(); ranges == 0 {
		t.Fatal("Where condition did not use the index")
	}
}

// TestIndexReplicationToFollower verifies that index DDL, backfill and
// maintenance all reach a follower through ordinary WAL shipping, and that
// follower-side queries answer from the replicated index.
func TestIndexReplicationToFollower(t *testing.T) {
	leader, err := sentinel.Open(sentinel.Options{
		Dir: t.TempDir(), PoolSize: 32, ReplAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower, err := sentinel.Open(sentinel.Options{
		Dir: t.TempDir(), PoolSize: 32, ReplicaOf: leader.ReplAddr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	for _, db := range []*sentinel.Database{leader, follower} {
		if _, err := db.DefineClass("STOCK", "", false); err != nil {
			t.Fatal(err)
		}
	}

	tx, err := leader.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := leader.New(tx, "STOCK", map[string]any{"price": i % 10}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := leader.CreateIndex(tx, "STOCK", "price", sentinel.HashIndex); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Wait for the definition and postings to arrive.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if defs := follower.Indexes(); len(defs) == 1 {
			stx, err := follower.BeginSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			rows, qerr := follower.Query(stx, sentinel.Q{Class: "STOCK", Where: query.Eq("price", 3)})
			_ = stx.Commit()
			if qerr != nil {
				t.Fatal(qerr)
			}
			if len(rows) == 3 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("index never replicated: defs=%v", follower.Indexes())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if probes, _, _, _, _ := follower.QueryManager().Stats(); probes == 0 {
		t.Fatal("follower query did not probe the replicated index")
	}

	// A re-key on the leader reaches the follower's directories.
	tx, err = leader.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := leader.Query(tx, sentinel.Q{Class: "STOCK", Where: query.Eq("price", 3), Limit: 1})
	if err != nil || len(rows) != 1 {
		t.Fatalf("leader probe: %v %v", rows, err)
	}
	inst, err := leader.Load(tx, rows[0].OID)
	if err != nil {
		t.Fatal(err)
	}
	inst.Attrs()["price"] = 77
	if err := leader.Persist(tx, inst); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for {
		stx, err := follower.BeginSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		rows, qerr := follower.Query(stx, sentinel.Q{Class: "STOCK", Where: query.Eq("price", 77)})
		_ = stx.Commit()
		if qerr != nil {
			t.Fatal(qerr)
		}
		if len(rows) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("re-key never replicated")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
