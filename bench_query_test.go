// Query-engine benchmarks: indexed access versus full extent scans at
// 1k/10k/100k objects, and the rule-condition payoff — a declarative
// Where condition answered from an index versus the equivalent
// hand-written function condition walking the extent. EXPERIMENTS.md
// records the measured shapes; `make bench-query` regenerates the
// committed numbers (BENCH_query.json) at full scale. The default size
// list keeps CI cheap; set SENTINEL_BENCH_QUERY to a comma-separated
// size list (e.g. "1000,10000,100000") for full runs.
//
// Selectivity discipline: every extent has ten objects per bucket, so an
// equality probe selects 10/n of the extent — 1% at 1k, 0.01% at 100k.
// The scan side evaluates the same predicate over a shadow attribute
// with identical values but no index, so both sides load the same data
// through the same MVCC machinery and differ only in access path.
package sentinel_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	sentinel "repro"
	"repro/internal/query"
)

// benchQuerySizes returns the extent sizes to benchmark.
func benchQuerySizes() []int {
	env := os.Getenv("SENTINEL_BENCH_QUERY")
	if env == "" {
		return []int{1000}
	}
	var out []int
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 100 {
			panic(fmt.Sprintf("SENTINEL_BENCH_QUERY=%q: want sizes >= 100", env))
		}
		out = append(out, n)
	}
	return out
}

// benchQueryDB opens a persistent database with n STOCK objects. Each
// object carries "bucket" (hash- and order-indexed) and "shadow"
// (identical values, unindexed) so indexed and scanned predicates select
// exactly the same rows. Seeding is batched to keep transactions small.
func benchQueryDB(b *testing.B, n int) (*sentinel.Database, int) {
	b.Helper()
	db, err := sentinel.Open(sentinel.Options{Dir: b.TempDir(), PoolSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = db.Close() })
	if _, err := db.DefineClass("STOCK", "", false); err != nil {
		b.Fatal(err)
	}
	nBuckets := n / 10
	const batch = 2000
	for lo := 0; lo < n; lo += batch {
		tx, err := db.Begin()
		if err != nil {
			b.Fatal(err)
		}
		hi := lo + batch
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			v := float64(i % nBuckets)
			if _, err := db.New(tx, "STOCK", map[string]any{
				"sym": fmt.Sprintf("S%06d", i), "bucket": v, "shadow": v,
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	tx, err := db.Begin()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateIndex(tx, "STOCK", "bucket", sentinel.HashIndex); err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateIndex(tx, "STOCK", "bucket", sentinel.OrderedIndex); err != nil {
		b.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return db, nBuckets
}

// runBenchQuery runs q once per iteration in a fresh snapshot
// transaction, rotating the key so no iteration repeats its predecessor's
// exact probe.
func runBenchQuery(b *testing.B, db *sentinel.Database, mk func(i int) sentinel.Q, wantRows int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := db.BeginSnapshot()
		if err != nil {
			b.Fatal(err)
		}
		rows, err := db.Query(tx, mk(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		if len(rows) != wantRows {
			b.Fatalf("query returned %d rows, want %d", len(rows), wantRows)
		}
	}
}

// BenchmarkQuery_IndexVsScan is the headline access-path comparison:
// "scan" answers an equality predicate on the unindexed shadow attribute
// (full extent walk), "probe" answers the identical predicate on the
// hash-indexed attribute, "range" answers a half-open interval on the
// ordered index. All three return the same row counts from the same
// extent.
func BenchmarkQuery_IndexVsScan(b *testing.B) {
	for _, n := range benchQuerySizes() {
		db, nBuckets := benchQueryDB(b, n)
		b.Run(fmt.Sprintf("n=%d/scan", n), func(b *testing.B) {
			runBenchQuery(b, db, func(i int) sentinel.Q {
				return sentinel.Q{Class: "STOCK", Where: query.Eq("shadow", float64(i%nBuckets))}
			}, 10)
		})
		b.Run(fmt.Sprintf("n=%d/probe", n), func(b *testing.B) {
			runBenchQuery(b, db, func(i int) sentinel.Q {
				return sentinel.Q{Class: "STOCK", Where: query.Eq("bucket", float64(i%nBuckets))}
			}, 10)
		})
		b.Run(fmt.Sprintf("n=%d/range", n), func(b *testing.B) {
			runBenchQuery(b, db, func(i int) sentinel.Q {
				lo := float64(i % (nBuckets - 4))
				return sentinel.Q{Class: "STOCK", Where: query.Between("bucket", lo, lo+4)}
			}, 50)
		})
	}
}

// BenchmarkRules_IndexedCondition measures the condition-evaluation path
// of rule firing: a declarative Where condition (EXISTS over an indexed
// attribute, answered by a directory probe plus one verified load)
// against the equivalent hand-written function condition (extent walk
// evaluating the same predicate, early-exit on first match). The probed
// key lives in the last bucket, so the walk sees nBuckets objects before
// its first hit — the honest cost of not knowing where the data is.
func BenchmarkRules_IndexedCondition(b *testing.B) {
	for _, n := range benchQuerySizes() {
		db, nBuckets := benchQueryDB(b, n)
		key := float64(nBuckets - 1)
		pred := query.Eq("bucket", key)

		var fired atomic.Int64
		if err := db.DefineExplicitEvent("tick_where"); err != nil {
			b.Fatal(err)
		}
		if err := db.DefineExplicitEvent("tick_func"); err != nil {
			b.Fatal(err)
		}
		if _, err := db.DefineRule(sentinel.RuleSpec{
			Name: fmt.Sprintf("where-%d", n), Event: "tick_where",
			Where: &sentinel.RuleWhere{Class: "STOCK", Pred: pred},
			Action: func(x *sentinel.Execution) error {
				fired.Add(1)
				return nil
			},
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := db.DefineRule(sentinel.RuleSpec{
			Name: fmt.Sprintf("func-%d", n), Event: "tick_func",
			Condition: func(x *sentinel.Execution) bool {
				exists := false
				_ = db.ForEach(x.Txn, "STOCK", false, func(inst *sentinel.Instance) bool {
					if pred.Eval(inst.Attrs()) {
						exists = true
						return false
					}
					return true
				})
				return exists
			},
			Action: func(x *sentinel.Execution) error {
				fired.Add(1)
				return nil
			},
		}); err != nil {
			b.Fatal(err)
		}

		tick := func(b *testing.B, event string) {
			b.ReportAllocs()
			fired.Store(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := db.Begin()
				if err != nil {
					b.Fatal(err)
				}
				if err := db.RaiseEvent(tx, event, nil); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if fired.Load() != int64(b.N) {
				b.Fatalf("rule fired %d times over %d ticks", fired.Load(), b.N)
			}
		}
		b.Run(fmt.Sprintf("n=%d/where-indexed", n), func(b *testing.B) { tick(b, "tick_where") })
		b.Run(fmt.Sprintf("n=%d/func-scan", n), func(b *testing.B) { tick(b, "tick_func") })
	}
}
