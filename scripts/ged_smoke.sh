#!/usr/bin/env bash
# End-to-end GED event-bus smoke: build gedserver and beast with the race
# detector, run a gedserver with a durable log, drive it with beast's
# multi-client load mode (contribute fan-in, live notify fan-out, replay
# from offset 0, reconnect redelivery), then SIGINT the server and
# require a clean drain. Fails on any dropped ack, stalled replay, or
# unclean shutdown.
set -euo pipefail

CONNS="${GED_SMOKE_CONNS:-1000}"
EVENTS="${GED_SMOKE_EVENTS:-20}"
SUBS="${GED_SMOKE_SUBS:-8}"
PORT="${GED_SMOKE_PORT:-7171}"

work="$(mktemp -d)"
server_pid=""
cleanup() {
    if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT

echo "== building gedserver and beast (-race)"
go build -race -o "$work/gedserver" ./cmd/gedserver
go build -race -o "$work/beast" ./cmd/beast

echo "== starting gedserver (durable log, $PORT)"
"$work/gedserver" -listen "127.0.0.1:$PORT" -log "$work/gedlog" \
    >"$work/server.log" 2>&1 &
server_pid=$!

# Wait for the listening line (the server prints it once bound).
for _ in $(seq 1 50); do
    if grep -q "listening on" "$work/server.log" 2>/dev/null; then
        break
    fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "gedserver exited early:"; cat "$work/server.log"; exit 1
    fi
    sleep 0.2
done
grep -q "listening on" "$work/server.log" || {
    echo "gedserver never started:"; cat "$work/server.log"; exit 1
}

echo "== driving load: $CONNS connections x $EVENTS events, $SUBS subscribers"
"$work/beast" -ged "127.0.0.1:$PORT" \
    -conns "$CONNS" -events-per-conn "$EVENTS" -subscribers "$SUBS"

echo "== shutting the server down (SIGINT)"
kill -INT "$server_pid"
for _ in $(seq 1 100); do
    if ! kill -0 "$server_pid" 2>/dev/null; then
        break
    fi
    sleep 0.2
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "gedserver did not exit within 20s of SIGINT:"; cat "$work/server.log"; exit 1
fi
wait "$server_pid" || { echo "gedserver exited nonzero:"; cat "$work/server.log"; exit 1; }
server_pid=""
grep -q "shutdown clean" "$work/server.log" || {
    echo "gedserver shutdown was not clean:"; cat "$work/server.log"; exit 1
}
# The race detector reports to stderr; any report fails the smoke.
if grep -q "WARNING: DATA RACE" "$work/server.log"; then
    echo "race detected in gedserver:"; cat "$work/server.log"; exit 1
fi

echo "== ged-smoke PASS"
