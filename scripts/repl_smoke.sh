#!/usr/bin/env bash
# End-to-end replication failover smoke: build replserver with the race
# detector, start a leader shipping its WAL and a follower applying it,
# kill -9 the leader mid-load, promote the follower with SIGUSR1, and
# require the promoted store to hold an exact contiguous prefix of the
# leader's committed history (the expect file) plus a successful
# post-promotion write. Fails on divergence, an empty replica, a race
# report, or an unclean follower exit.
set -euo pipefail

LOAD="${REPL_SMOKE_LOAD:-400}"
KILL_AT="${REPL_SMOKE_KILL_AT:-120}"
PORT="${REPL_SMOKE_PORT:-7272}"

work="$(mktemp -d)"
leader_pid=""
follower_pid=""
cleanup() {
    for pid in "$leader_pid" "$follower_pid"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$work"
}
trap cleanup EXIT

echo "== building replserver (-race)"
go build -race -o "$work/replserver" ./cmd/replserver

echo "== starting leader (WAL on 127.0.0.1:$PORT, load $LOAD keys)"
"$work/replserver" -dir "$work/leader" -listen "127.0.0.1:$PORT" \
    -load "$LOAD" -expect "$work/expect.txt" \
    >"$work/leader.log" 2>&1 &
leader_pid=$!
for _ in $(seq 1 100); do
    if grep -q "leader serving WAL" "$work/leader.log" 2>/dev/null; then
        break
    fi
    if ! kill -0 "$leader_pid" 2>/dev/null; then
        echo "leader exited early:"; cat "$work/leader.log"; exit 1
    fi
    sleep 0.1
done
grep -q "leader serving WAL" "$work/leader.log" || {
    echo "leader never started:"; cat "$work/leader.log"; exit 1
}

echo "== starting follower"
"$work/replserver" -dir "$work/follower" -replica-of "127.0.0.1:$PORT" \
    -expect "$work/expect.txt" \
    >"$work/follower.log" 2>&1 &
follower_pid=$!
for _ in $(seq 1 100); do
    if grep -q "following" "$work/follower.log" 2>/dev/null; then
        break
    fi
    if ! kill -0 "$follower_pid" 2>/dev/null; then
        echo "follower exited early:"; cat "$work/follower.log"; exit 1
    fi
    sleep 0.1
done

echo "== waiting for $KILL_AT committed keys, then kill -9 the leader"
for _ in $(seq 1 600); do
    lines=0
    [[ -f "$work/expect.txt" ]] && lines="$(wc -l < "$work/expect.txt")"
    if [[ "$lines" -ge "$KILL_AT" ]]; then
        break
    fi
    if ! kill -0 "$leader_pid" 2>/dev/null; then
        echo "leader died before reaching $KILL_AT keys:"; cat "$work/leader.log"; exit 1
    fi
    sleep 0.1
done
[[ "$(wc -l < "$work/expect.txt")" -ge "$KILL_AT" ]] || {
    echo "load never reached $KILL_AT keys"; cat "$work/leader.log"; exit 1
}
kill -9 "$leader_pid"
leader_pid=""

echo "== promoting the follower (SIGUSR1)"
kill -USR1 "$follower_pid"
for _ in $(seq 1 300); do
    if ! kill -0 "$follower_pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if kill -0 "$follower_pid" 2>/dev/null; then
    echo "follower did not exit within 30s of SIGUSR1:"; cat "$work/follower.log"; exit 1
fi
wait "$follower_pid" || { echo "follower exited nonzero:"; cat "$work/follower.log"; exit 1; }
follower_pid=""
grep -q "promote verified" "$work/follower.log" || {
    echo "promotion was not verified:"; cat "$work/follower.log"; exit 1
}
for f in leader follower; do
    if grep -q "WARNING: DATA RACE" "$work/$f.log"; then
        echo "race detected in $f:"; cat "$work/$f.log"; exit 1
    fi
done
grep "promote verified" "$work/follower.log"

echo "== repl-smoke PASS"
